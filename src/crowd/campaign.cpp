#include "crowd/campaign.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/stats.h"

namespace sensei::crowd {

Campaign::Campaign(const GroundTruthQoE& oracle, RaterConfig rater_config,
                   CampaignConfig config, uint64_t seed)
    : oracle_(oracle), pool_(rater_config, seed ^ 0x5151), config_(config), rng_(seed) {}

CampaignResult Campaign::run(const std::vector<sim::RenderedVideo>& videos,
                             const sim::RenderedVideo& reference,
                             size_t ratings_per_video) {
  if (videos.empty()) throw std::runtime_error("campaign: no videos");
  if (ratings_per_video == 0) throw std::runtime_error("campaign: zero ratings requested");

  const size_t n = videos.size();
  std::vector<double> star_sums(n, 0.0);
  std::vector<size_t> counts(n, 0);
  std::vector<double> true_qoe(n);
  for (size_t i = 0; i < n; ++i) true_qoe[i] = oracle_.score(videos[i]);
  const double reference_qoe = oracle_.score(reference);

  CampaignResult result;
  double elapsed_s = 0.0;
  double ref_star_sum = 0.0;
  size_t ref_count = 0;

  auto need_more = [&]() {
    for (size_t i = 0; i < n; ++i) {
      if (counts[i] < ratings_per_video) return true;
    }
    return false;
  };

  // Videos are assigned to surveys round-robin over a shuffled order so all
  // renderings accumulate ratings at a similar pace.
  std::vector<size_t> queue(n);
  std::iota(queue.begin(), queue.end(), size_t{0});
  rng_.shuffle(queue);
  size_t queue_pos = 0;

  while (need_more() && result.participants_recruited < config_.max_participants) {
    // Sign-up latency dominates campaign delay; surveys run in parallel.
    elapsed_s += rng_.exponential(config_.signup_latency_s_mean);
    Rater rater = pool_.recruit();
    ++result.participants_recruited;

    // Assemble this participant's survey: K-1 pending videos + the reference.
    size_t assigned = std::min(config_.videos_per_participant - 1, n);
    std::vector<size_t> survey;
    for (size_t k = 0; k < assigned; ++k) {
      // Prefer videos still needing ratings.
      size_t tries = 0;
      size_t pick;
      do {
        pick = queue[queue_pos++ % queue.size()];
        ++tries;
      } while (counts[pick] >= ratings_per_video && tries < queue.size());
      survey.push_back(pick);
    }

    // Randomized viewing order (reference inserted at a random slot).
    rng_.shuffle(survey);

    // Rate the reference and the degraded renderings.
    Rating ref_rating = pool_.rate(rater, reference_qoe);
    std::vector<Rating> ratings;
    ratings.reserve(survey.size());
    double survey_minutes = (reference.playback_duration_s() +
                             reference.startup_delay_s()) / 60.0;
    for (size_t idx : survey) {
      ratings.push_back(pool_.rate(rater, true_qoe[idx]));
      survey_minutes += (videos[idx].playback_duration_s() +
                         videos[idx].total_rebuffer_s()) / 60.0;
    }

    // Quality control: reject if any degraded video outrated the reference,
    // or if any video was not fully watched.
    bool rejected = !ref_rating.watched_full;
    for (size_t k = 0; k < ratings.size() && !rejected; ++k) {
      if (!ratings[k].watched_full) rejected = true;
      if (ratings[k].stars > ref_rating.stars) rejected = true;
    }
    if (rejected) {
      ++result.participants_rejected;
      continue;  // rejected participants are not paid and contribute nothing
    }

    for (size_t k = 0; k < survey.size(); ++k) {
      star_sums[survey[k]] += ratings[k].stars;
      ++counts[survey[k]];
    }
    ref_star_sum += ref_rating.stars;
    ++ref_count;
    result.watched_video_minutes += survey_minutes;
    result.cost_usd += config_.hourly_rate_usd * survey_minutes / 60.0;
  }

  result.mos.resize(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double mean_stars = counts[i] ? star_sums[i] / static_cast<double>(counts[i]) : 3.0;
    result.mos[i] = RaterPool::stars_to_unit(mean_stars);
  }
  if (ref_count) {
    result.reference_mos =
        RaterPool::stars_to_unit(ref_star_sum / static_cast<double>(ref_count));
  }
  result.rating_counts = std::move(counts);
  result.elapsed_minutes = elapsed_s / 60.0;
  return result;
}

}  // namespace sensei::crowd
