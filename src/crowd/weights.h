// Per-chunk sensitivity weight inference (§4.2).
//
// The paper fits Q_j = sum_i w_i q_ij over rated renderings j by linear
// regression. Fitting that system directly is badly conditioned: every
// rendering shares the same large "pristine" background, so the per-chunk
// columns are nearly collinear and ridge regularization flattens the weights.
// We therefore solve the equivalent *differenced* system against the
// reference rendering (the pristine video every survey already contains):
//
//   Q_ref - Q_j = sum_i w_i (q_i,ref - q_ij)
//
// whose rows are sparse (only chunks touched by rendering j's incident are
// nonzero), making the weights directly identified by each incident's MOS
// drop. Non-negative ridge regression keeps noise-induced negative weights
// out; chunks never touched by any incident keep the neutral weight 1.
// Weights are normalized to mean 1.
#pragma once

#include <vector>

#include "qoe/chunk_quality.h"
#include "sim/render.h"

namespace sensei::crowd {

struct WeightInferenceConfig {
  double ridge_lambda = 0.05;
  int iterations = 300;
  qoe::ChunkQualityParams chunk;
};

// Infers `num_chunks` weights from rated renderings and the rated reference.
// Renderings may be clips; each row only constrains the chunks it covers.
std::vector<double> infer_weights(const std::vector<sim::RenderedVideo>& videos,
                                  const std::vector<double>& mos,
                                  const sim::RenderedVideo& reference, double reference_mos,
                                  size_t num_chunks,
                                  const WeightInferenceConfig& config = WeightInferenceConfig());

// Normalizes a weight vector to mean 1 (no-op on empty/degenerate input).
void normalize_mean_one(std::vector<double>& weights);

}  // namespace sensei::crowd
