// Whole-session throughput bench: sessions/s and ns/chunk are the unit of
// cost at evaluation scale (thousands of simulated sessions per figure
// grid), so this bench tracks them directly, indexed trace integration vs
// the linear reference walker. It also microbenches ThroughputTrace::
// advance() across trace lengths, over a pinned-seed probe mix spanning
// chunk-scale to session-scale transfers plus dead-link classification.
// Emits machine-readable BENCH_session.json (schema in bench/README.md).
//
//   ./bench_session_throughput              full sweep (~1 min)
//   ./bench_session_throughput --smoke      reduced sweep for CI (~5 s)
//   ./bench_session_throughput --out FILE   JSON destination
//   ./bench_session_throughput --threads N  worker-pool size for the grids
//   ./bench_session_throughput --policy S   extra registry spec row (repeatable)
//
// Results of the two integration modes are cross-checked while timing; any
// elapsed_s/dead-link/ session-output mismatch fails the process (the same
// contract tests/test_trace_index.cpp enforces).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "abr/registry.h"
#include "bench_util.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/trace.h"
#include "net/trace_gen.h"
#include "sim/player.h"
#include "util/rng.h"

using namespace sensei;

namespace {

// --- advance() microbench --------------------------------------------------

// Cellular-like looping trace with zero-run fades, `intervals` samples.
net::ThroughputTrace fade_trace(size_t intervals, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(intervals);
  while (samples.size() < intervals) {
    size_t run = static_cast<size_t>(rng.uniform_int(1, 30));
    bool fade = rng.chance(0.25);
    for (size_t i = 0; i < run && samples.size() < intervals; ++i) {
      samples.push_back(fade ? 0.0 : rng.uniform(100.0, 5000.0));
    }
  }
  return net::ThroughputTrace("fade-" + std::to_string(intervals), std::move(samples), 1.0);
}

struct Probe {
  double bytes;
  double start_s;
};

// Pinned-seed probe mix: chunk-scale (sub-second), multi-interval, and
// session-scale transfers (a sizable fraction of the trace's total
// capacity — the distribution a whole session integrates over), plus
// probes on the finite variant that run off the end (dead-link
// classification).
std::vector<Probe> make_probes(const net::ThroughputTrace& trace, size_t count,
                               uint64_t seed) {
  util::Rng rng(seed);
  double capacity_bytes = trace.mean_kbps() * 1000.0 * trace.duration_s() / 8.0;
  std::vector<Probe> probes;
  probes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double frac;
    switch (i % 4) {
      case 0: frac = rng.uniform(1e-5, 1e-3); break;   // one chunk
      case 1: frac = rng.uniform(1e-3, 3e-2); break;   // a few intervals
      case 2: frac = rng.uniform(0.05, 0.40); break;   // minutes of media
      default: frac = rng.uniform(0.40, 0.90); break;  // session-scale
    }
    probes.push_back({frac * capacity_bytes, rng.uniform(0.0, trace.duration_s())});
  }
  return probes;
}

double time_advances_ns(const net::ThroughputTrace& looping,
                        const net::ThroughputTrace& finite,
                        const std::vector<Probe>& probes, net::TraceIntegration mode,
                        size_t reps, double* checksum) {
  double start = bench::now_s();
  double sum = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    for (const auto& p : probes) {
      net::TransferResult a = looping.advance(p.bytes, p.start_s, mode);
      sum += a.completed ? a.elapsed_s : -1.0;
      // The finite variant exercises exhaustion/outage classification for
      // the large probes and early completion for the small ones.
      net::TransferResult b = finite.advance(p.bytes, p.start_s, mode);
      sum += b.completed ? b.elapsed_s : -1.0;
    }
  }
  double total_ns = (bench::now_s() - start) * 1e9;
  *checksum += sum;
  return total_ns / static_cast<double>(reps * probes.size() * 2);
}

// --- whole-session grid ----------------------------------------------------

// A bench row: a registry policy spec plus its display name. `make` builds
// through the policy registry, so this bench exercises exactly the same
// construction path as the fleet/grid layers.
struct PolicyCase {
  std::string name;
  std::function<std::unique_ptr<sim::AbrPolicy>()> make;
  bool use_weights = false;
};

// SENSEI variants consume the per-chunk sensitivity weights; everything
// else streams without them.
bool spec_uses_weights(const abr::PolicySpec& canonical) {
  return canonical.name.rfind("sensei-", 0) == 0;
}

PolicyCase registry_case(std::string display, const std::string& spec_text) {
  abr::PolicySpec canonical =
      abr::PolicyRegistry::instance().canonicalize(abr::PolicySpec::parse(spec_text));
  const std::string canonical_text = canonical.to_string();
  return {std::move(display), [canonical_text] { return abr::make_policy(canonical_text); },
          spec_uses_weights(canonical)};
}

struct GridOutput {
  std::vector<sim::SessionResult> sessions;
  double wall_s = 0.0;
  size_t chunks = 0;
};

GridOutput run_sessions(const std::vector<media::EncodedVideo>& videos,
                        const std::vector<net::ThroughputTrace>& traces,
                        const PolicyCase& spec,
                        const std::vector<std::vector<double>>& weights,
                        const core::ExperimentRunner& runner) {
  GridOutput out;
  out.sessions.resize(videos.size() * traces.size());
  sim::Player player;
  double start = bench::now_s();
  runner.for_each(out.sessions.size(), [&](size_t i) {
    size_t v = i / traces.size();
    size_t t = i % traces.size();
    auto policy = spec.make();
    const std::vector<double> none;
    out.sessions[i] = player.stream(videos[v], traces[t], *policy,
                                    spec.use_weights ? weights[v] : none);
  });
  out.wall_s = bench::now_s() - start;
  for (const auto& s : out.sessions) out.chunks += s.chunks().size();
  return out;
}

size_t diff_sessions(const std::vector<sim::SessionResult>& a,
                     const std::vector<sim::SessionResult>& b) {
  size_t diffs = 0;
  if (a.size() != b.size()) return a.size() + b.size();
  for (size_t i = 0; i < a.size(); ++i) {
    if (bench::sessions_differ(a[i], b[i])) ++diffs;
  }
  return diffs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::check_flags(argc, argv, {"--out", "--threads", "--policy"}, {"--smoke"},
                     "bench_session_throughput [--smoke] [--out FILE] [--threads N] "
                     "[--policy SPEC]...");
  const bool smoke = bench::smoke_arg(argc, argv);
  const std::string out_path = bench::out_arg(argc, argv, "BENCH_session.json");
  const uint64_t seed = 0x5e551011;
  core::ExperimentRunner runner(bench::threads_arg(argc, argv));

  // ---- advance() microbench ----------------------------------------------
  const std::vector<size_t> lengths = smoke
                                          ? std::vector<size_t>{100, 1000, 10000}
                                          : std::vector<size_t>{100, 1000, 10000, 100000};
  const size_t num_probes = smoke ? 24 : 96;

  struct AdvanceRow {
    size_t intervals;
    double indexed_ns, walker_ns;
    size_t mismatches;
  };
  std::vector<AdvanceRow> advance_rows;

  std::printf("advance() microbench: %zu probes/length (chunk- to session-scale + "
              "dead-link), looping + finite\n",
              num_probes);
  std::printf("%10s %14s %14s %10s %12s\n", "intervals", "indexed ns", "walker ns",
              "speedup", "mismatches");
  for (size_t len : lengths) {
    net::ThroughputTrace looping = fade_trace(len, seed ^ len);
    net::ThroughputTrace finite = looping.as_finite();
    auto probes = make_probes(looping, num_probes, seed * 31 + len);

    // Cross-check before timing: the modes must agree bit-for-bit.
    size_t mismatches = 0;
    for (const auto& p : probes) {
      for (const net::ThroughputTrace* t : {&looping, &finite}) {
        net::TransferResult a = t->advance(p.bytes, p.start_s, net::TraceIntegration::kIndexed);
        net::TransferResult b = t->advance(p.bytes, p.start_s, net::TraceIntegration::kWalker);
        if (a.completed != b.completed || a.elapsed_s != b.elapsed_s) ++mismatches;
      }
    }

    const size_t indexed_reps = smoke ? 20 : 200;
    const size_t walker_reps =
        smoke ? 2 : (len >= 100000 ? 2 : (len >= 10000 ? 5 : 50));
    double checksum = 0.0;
    double indexed_ns =
        time_advances_ns(looping, finite, probes, net::TraceIntegration::kIndexed,
                         indexed_reps, &checksum);
    double walker_ns =
        time_advances_ns(looping, finite, probes, net::TraceIntegration::kWalker,
                         walker_reps, &checksum);
    advance_rows.push_back({len, indexed_ns, walker_ns, mismatches});
    std::printf("%10zu %14.0f %14.0f %9.1fx %12zu\n", len, indexed_ns, walker_ns,
                walker_ns / indexed_ns, mismatches);
  }

  // ---- whole-session throughput ------------------------------------------
  const size_t num_videos = smoke ? 2 : 4;
  const double video_s = smoke ? 120.0 : 240.0;
  std::vector<media::EncodedVideo> videos;
  {
    media::Encoder encoder;
    const media::Genre genres[] = {media::Genre::kSports, media::Genre::kNature,
                                   media::Genre::kGaming, media::Genre::kAnimation};
    for (size_t i = 0; i < num_videos; ++i) {
      videos.push_back(encoder.encode(media::SourceVideo::generate(
          "SessBench" + std::to_string(i), genres[i % 4], video_s)));
    }
  }
  std::vector<net::ThroughputTrace> traces = net::TraceGenerator::test_set(600.0);
  if (smoke) traces.resize(3);

  // Synthetic sensitivity weights (profiling would dominate the bench).
  std::vector<std::vector<double>> weights;
  for (const auto& v : videos) {
    std::vector<double> w(v.num_chunks(), 0.9);
    for (size_t i = 2; i < w.size(); i += 6) w[i] = 2.1;
    weights.push_back(std::move(w));
  }

  // Default rows keep their historical display names (the pinned
  // BENCH_session.json keys) but construct through the registry.
  std::vector<PolicyCase> policies;
  policies.push_back(registry_case("bba", "bba"));
  if (!smoke) {
    policies.push_back(registry_case("rate_based", "rate_based"));
    policies.push_back(registry_case("fugu", "fugu"));
  }
  policies.push_back(registry_case("sensei_fugu", "sensei-fugu"));
  for (const std::string& extra : bench::policy_specs_arg(argc, argv)) {
    const std::string canonical = abr::PolicyRegistry::instance().canonical_string(extra);
    policies.push_back(registry_case(canonical, extra));
  }

  struct SessionRow {
    std::string policy;
    size_t sessions, chunks;
    double indexed_s, walker_s;
    size_t diffs;
  };
  std::vector<SessionRow> session_rows;
  const size_t session_reps = smoke ? 1 : 3;

  std::printf("\nsession grid: %zu videos x %zu traces, %zu thread(s), best of %zu\n",
              videos.size(), traces.size(), runner.num_threads(), session_reps);
  std::printf("%12s %10s %14s %14s %10s %8s\n", "policy", "sessions", "indexed sess/s",
              "walker sess/s", "speedup", "diffs");
  for (const auto& spec : policies) {
    GridOutput indexed, walker;
    double best_indexed = 1e300, best_walker = 1e300;
    // Untimed warmup pass: touches every video/trace/policy code path so
    // the first timed rep is not charged icache/page-fault cold starts.
    net::set_default_trace_integration(net::TraceIntegration::kIndexed);
    run_sessions(videos, traces, spec, weights, runner);
    net::set_default_trace_integration(net::TraceIntegration::kWalker);
    run_sessions(videos, traces, spec, weights, runner);
    for (size_t r = 0; r < session_reps; ++r) {
      net::set_default_trace_integration(net::TraceIntegration::kIndexed);
      GridOutput gi = run_sessions(videos, traces, spec, weights, runner);
      net::set_default_trace_integration(net::TraceIntegration::kWalker);
      GridOutput gw = run_sessions(videos, traces, spec, weights, runner);
      if (gi.wall_s < best_indexed) {
        best_indexed = gi.wall_s;
        indexed = std::move(gi);
      }
      if (gw.wall_s < best_walker) {
        best_walker = gw.wall_s;
        walker = std::move(gw);
      }
    }
    net::set_default_trace_integration(net::TraceIntegration::kIndexed);
    size_t diffs = diff_sessions(indexed.sessions, walker.sessions);
    size_t count = indexed.sessions.size();
    session_rows.push_back(
        {spec.name, count, indexed.chunks, best_indexed, best_walker, diffs});
    std::printf("%12s %10zu %14.1f %14.1f %9.2fx %8zu\n", spec.name.c_str(), count,
                count / best_indexed, count / best_walker, best_walker / best_indexed,
                diffs);
  }

  // ---- JSON ---------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  size_t total_mismatches = 0;
  double speedup_10k = 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"session_throughput\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"config\": {\"videos\": %zu, \"traces\": %zu, \"threads\": %zu, "
               "\"advance_probes\": %zu, \"seed\": %llu},\n",
               videos.size(), traces.size(), runner.num_threads(), num_probes,
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"advance\": [\n");
  for (size_t i = 0; i < advance_rows.size(); ++i) {
    const AdvanceRow& r = advance_rows[i];
    double speedup = r.walker_ns / r.indexed_ns;
    if (r.intervals == 10000) speedup_10k = speedup;
    total_mismatches += r.mismatches;
    std::fprintf(f,
                 "    {\"intervals\": %zu, \"indexed_ns\": %.0f, \"walker_ns\": %.0f, "
                 "\"speedup\": %.2f, \"mismatches\": %zu}%s\n",
                 r.intervals, r.indexed_ns, r.walker_ns, speedup, r.mismatches,
                 i + 1 < advance_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sessions\": [\n");
  double min_session_speedup = 1e300;
  size_t total_diffs = 0;
  for (size_t i = 0; i < session_rows.size(); ++i) {
    const SessionRow& r = session_rows[i];
    double speedup = r.walker_s / r.indexed_s;
    if (speedup < min_session_speedup) min_session_speedup = speedup;
    total_diffs += r.diffs;
    std::fprintf(
        f,
        "    {\"policy\": \"%s\", \"sessions\": %zu, \"chunks\": %zu, "
        "\"indexed\": {\"sessions_per_s\": %.2f, \"ns_per_chunk\": %.0f}, "
        "\"walker\": {\"sessions_per_s\": %.2f, \"ns_per_chunk\": %.0f}, "
        "\"speedup\": %.3f, \"output_diffs\": %zu}%s\n",
        r.policy.c_str(), r.sessions, r.chunks, r.sessions / r.indexed_s,
        r.indexed_s * 1e9 / static_cast<double>(r.chunks), r.sessions / r.walker_s,
        r.walker_s * 1e9 / static_cast<double>(r.chunks), speedup, r.diffs,
        i + 1 < session_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"summary\": {\"advance_speedup_10k_intervals\": %.2f, "
               "\"min_session_speedup\": %.3f, \"advance_mismatches\": %zu, "
               "\"session_output_diffs\": %zu}\n",
               speedup_10k, min_session_speedup, total_mismatches, total_diffs);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (total_mismatches > 0 || total_diffs > 0) {
    std::fprintf(stderr,
                 "error: integration modes disagreed (%zu advance mismatches, "
                 "%zu session diffs)\n",
                 total_mismatches, total_diffs);
    return 1;
  }
  return 0;
}
