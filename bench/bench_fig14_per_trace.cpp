// Figure 14: QoE gain over BBA per throughput trace (ordered by increasing
// average throughput), averaged across videos. Paper: SENSEI's advantage is
// largest when throughput is low.
//
// Ported onto core::ExperimentRunner: the four (video × trace) grids fan
// across the worker pool (`--threads N`, default hardware concurrency);
// aggregation happens after the fact on bit-identical per-cell results.
//
// `--construction registry|direct` selects how the four policies are
// built: through Experiments::policy_factory (the registry path every
// other layer uses, default) or via reference lambdas calling the
// concrete constructors. CI diffs the two outputs — they must be
// bit-identical, the registry==direct construction contract.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "core/experiments.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;
using core::Experiments;

namespace {

const char* planner_text(abr::PlannerKind planner) {
  switch (planner) {
    case abr::PlannerKind::kExhaustive: return "exhaustive";
    case abr::PlannerKind::kVi: return "vi";
    default: return "dp";
  }
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentRunner runner(bench::threads_arg(argc, argv));
  const abr::PlannerKind planner = bench::planner_arg(argc, argv);
  bench::trace_integration_arg(argc, argv);
  std::string construction = "registry";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--construction") == 0) construction = argv[i + 1];
  }
  if (construction != "registry" && construction != "direct") {
    std::fprintf(stderr, "error: --construction expects registry or direct\n");
    return 2;
  }

  const auto& videos = Experiments::videos();
  const auto& traces = Experiments::traces();
  Experiments::weights();
  auto& trained_pensieve = Experiments::pensieve();

  Experiments::PolicyFactory f_bba, f_sensei, f_pen, f_fugu;
  if (construction == "direct") {
    // Reference path: concrete constructors, bypassing the registry.
    f_bba = [] { return std::make_unique<abr::BbaAbr>(); };
    f_sensei = [planner] { return core::Sensei::make_sensei_fugu({}, planner); };
    f_pen = [&trained_pensieve] { return std::make_unique<abr::PensieveAbr>(trained_pensieve); };
    f_fugu = [planner] { return core::Sensei::make_fugu({}, planner); };
  } else {
    const std::string suffix = std::string(":planner=") + planner_text(planner);
    f_bba = Experiments::policy_factory("bba");
    f_sensei = Experiments::policy_factory("sensei-fugu" + suffix);
    f_pen = Experiments::policy_factory("pensieve");
    f_fugu = Experiments::policy_factory("fugu" + suffix);
  }

  auto start = std::chrono::steady_clock::now();
  auto grid_bba = Experiments::run_grid(f_bba, false, runner);
  auto grid_sensei = Experiments::run_grid(f_sensei, true, runner);
  auto grid_pen = Experiments::run_grid(f_pen, false, runner);
  auto grid_fugu = Experiments::run_grid(f_fugu, false, runner);
  double sweep_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                       .count();

  std::printf("%s", util::banner(
                        "Figure 14: QoE gain over BBA per trace (ordered by mean "
                        "throughput)")
                        .c_str());
  util::Table table({"trace", "mean Kbps", "SENSEI %", "Pensieve %", "Fugu %"});
  double low_half_gain = 0.0, high_half_gain = 0.0;
  for (size_t t = 0; t < traces.size(); ++t) {
    util::Accumulator g_sensei, g_pen, g_fugu;
    for (size_t v = 0; v < videos.size(); ++v) {
      size_t cell = v * traces.size() + t;
      double q_bba = grid_bba[cell].true_qoe;
      if (q_bba < 0.02) continue;
      g_sensei.add((grid_sensei[cell].true_qoe - q_bba) / q_bba * 100.0);
      g_pen.add((grid_pen[cell].true_qoe - q_bba) / q_bba * 100.0);
      g_fugu.add((grid_fugu[cell].true_qoe - q_bba) / q_bba * 100.0);
    }
    if (t < traces.size() / 2) {
      low_half_gain += g_sensei.mean();
    } else {
      high_half_gain += g_sensei.mean();
    }
    table.add_row({traces[t].name(),
                   util::Table::format_double(traces[t].mean_kbps(), 0),
                   util::Table::format_double(g_sensei.mean(), 1),
                   util::Table::format_double(g_pen.mean(), 1),
                   util::Table::format_double(g_fugu.mean(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("SENSEI mean gain, low-throughput half: %+.1f%%; high half: %+.1f%% "
              "(paper: more improvement when throughput is lower)\n",
              low_half_gain / (traces.size() / 2.0),
              high_half_gain / (traces.size() / 2.0));
  std::printf("grid sweep: %zu sessions in %.2fs on %zu thread(s)\n",
              4 * videos.size() * traces.size(), sweep_s, runner.num_threads());
  return 0;
}
