// Figure 14: QoE gain over BBA per throughput trace (ordered by increasing
// average throughput), averaged across videos. Paper: SENSEI's advantage is
// largest when throughput is low.
#include <cstdio>

#include "core/experiments.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;
using core::Experiments;

int main() {
  const auto& videos = Experiments::videos();
  const auto& traces = Experiments::traces();
  const auto& weights = Experiments::weights();

  abr::BbaAbr bba;
  auto fugu = core::Sensei::make_fugu();
  auto sensei_fugu = core::Sensei::make_sensei_fugu();
  auto& pensieve = Experiments::pensieve();

  std::printf("%s", util::banner(
                        "Figure 14: QoE gain over BBA per trace (ordered by mean "
                        "throughput)")
                        .c_str());
  util::Table table({"trace", "mean Kbps", "SENSEI %", "Pensieve %", "Fugu %"});
  const std::vector<double> none;
  double low_half_gain = 0.0, high_half_gain = 0.0;
  for (size_t t = 0; t < traces.size(); ++t) {
    util::Accumulator g_sensei, g_pen, g_fugu;
    for (size_t v = 0; v < videos.size(); ++v) {
      double q_bba = Experiments::run(videos[v], traces[t], bba, none).true_qoe;
      if (q_bba < 0.02) continue;
      g_sensei.add(
          (Experiments::run(videos[v], traces[t], *sensei_fugu, weights[v]).true_qoe -
           q_bba) /
          q_bba * 100.0);
      g_pen.add((Experiments::run(videos[v], traces[t], pensieve, none).true_qoe - q_bba) /
                q_bba * 100.0);
      g_fugu.add((Experiments::run(videos[v], traces[t], *fugu, none).true_qoe - q_bba) /
                 q_bba * 100.0);
    }
    if (t < traces.size() / 2) {
      low_half_gain += g_sensei.mean();
    } else {
      high_half_gain += g_sensei.mean();
    }
    table.add_row({traces[t].name(),
                   util::Table::format_double(traces[t].mean_kbps(), 0),
                   util::Table::format_double(g_sensei.mean(), 1),
                   util::Table::format_double(g_pen.mean(), 1),
                   util::Table::format_double(g_fugu.mean(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("SENSEI mean gain, low-throughput half: %+.1f%%; high half: %+.1f%% "
              "(paper: more improvement when throughput is lower)\n",
              low_half_gain / (traces.size() / 2.0),
              high_half_gain / (traces.size() / 2.0));
  return 0;
}
