// Fleet-scale bench: how many sessions/s the sharded multi-bottleneck
// FleetSimulator sustains, at what peak memory, and the determinism rows
// that make the numbers trustworthy. Emits machine-readable
// BENCH_fleet.json (schema in bench/README.md).
//
//   ./bench_fleet                    full sweep, headline >= 1,000,000 sessions
//   ./bench_fleet --smoke            reduced sweep for CI (~seconds)
//   ./bench_fleet --out FILE         JSON destination
//   ./bench_fleet --threads N        ExperimentRunner pool size
//   ./bench_fleet --shards N         cells per fan-out block (0 = one per cell)
//   ./bench_fleet --cells N          override the headline scenario's cell count
//   ./bench_fleet --baseline FILE    validate a pinned JSON's schema
//   ./bench_fleet --policy SPEC      replace the workload's policy mix with the
//                                    given registry specs (repeatable, equal
//                                    weights) — see abr/registry.h
//
// Two kinds of output lines:
//  - "fleet ..." rows: per-scenario aggregates printed with %.9g and no
//    timing — CI diffs these byte-for-byte across --threads 1/4 and across
//    --shards values (the fleet's bit-identity contract, also pinned by
//    tests/test_fleet.cpp).
//  - "perf ..." rows: wall time, sessions/s, and peak RSS — informational,
//    never diffed.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "sim/fleet.h"

using namespace sensei;

namespace {

// Parses `--shards N` / `--cells N`: non-negative integers, 0 = automatic.
size_t count_arg(int argc, char** argv, const char* flag, size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      char* end = nullptr;
      long n = (i + 1 < argc) ? std::strtol(argv[i + 1], &end, 10) : -1;
      if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' || n < 0) {
        std::fprintf(stderr, "error: %s requires a non-negative integer\n", flag);
        std::exit(2);
      }
      return static_cast<size_t>(n);
    }
  }
  return fallback;
}

// Peak resident set size in MiB, from /proc/self/status VmHWM (Linux).
// Returns 0 where the file or the field is unavailable.
double peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0.0;
  char line[256];
  double kib = 0.0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

struct Scenario {
  std::string name;
  sim::FleetConfig config;
};

struct Row {
  std::string name;
  sim::FleetAggregates agg;
  double wall_s = 0.0;
  double rss_mib = 0.0;  // VmHWM after the scenario ran
};

}  // namespace

int main(int argc, char** argv) {
  bench::check_flags(argc, argv,
                     {"--out", "--threads", "--shards", "--cells", "--baseline", "--policy",
                      "--backend"},
                     {"--smoke"},
                     "bench_fleet [--smoke] [--out FILE] [--threads N] [--shards N] "
                     "[--cells N] [--baseline FILE] [--policy SPEC]... "
                     "[--backend scalar|simd|auto]");
  const bool smoke = bench::smoke_arg(argc, argv);
  const std::string out_path = bench::out_arg(argc, argv, "BENCH_fleet.json");
  const std::string baseline_path = bench::baseline_arg(argc, argv);
  if (!baseline_path.empty()) {
    // Schema v3: v2's spec-keyed sessions_by_policy plus the typed outcome
    // split (completed/abandoned per policy) and the resilience counters.
    // v4 added the kernel backend dimension (util/kernels).
    bench::check_baseline_fields(baseline_path, 4,
                                 {"\"sessions_per_s\"", "\"peak_rss_mib\"", "\"qoe_p99\"",
                                  "\"total_sessions\"", "\"peak_concurrent\"",
                                  "\"sessions_by_policy\"", "\"completed_by_policy\"",
                                  "\"abandoned_by_policy\"", "\"timeouts\"",
                                  "\"failovers\"", "whittle", "\"backend\""});
  }
  // `--policy SPEC`... replaces the default workload mix (equal weights).
  std::vector<sim::PolicyMixEntry> mix_override;
  for (const std::string& spec : bench::policy_specs_arg(argc, argv)) {
    mix_override.push_back({spec, 1.0});
  }
  const char* backend = bench::backend_arg(argc, argv);
  const size_t num_shards = count_arg(argc, argv, "--shards", 0);
  const size_t cells_override = count_arg(argc, argv, "--cells", 0);
  core::ExperimentRunner runner(bench::threads_arg(argc, argv));

  // Shared video pool: four genres, 120 s each (30 chunks), the same shape
  // the multisession bench streams.
  media::Encoder encoder;
  std::vector<media::EncodedVideo> videos;
  const media::Genre genres[] = {media::Genre::kSports, media::Genre::kNature,
                                 media::Genre::kGaming, media::Genre::kAnimation};
  for (size_t i = 0; i < 4; ++i) {
    videos.push_back(encoder.encode(
        media::SourceVideo::generate("Fleet" + std::to_string(i), genres[i], 120.0)));
  }
  std::vector<const media::EncodedVideo*> video_ptrs;
  for (const auto& v : videos) video_ptrs.push_back(&v);

  // Scenarios. Sessions per cell ~ arrival_rate * window (diurnal thins
  // below that); the headline scenario's cell count is sized so the fleet
  // streams >= 1,000,000 sessions end to end.
  std::vector<Scenario> scenarios;
  auto add = [&](const char* name, size_t cells, sim::ArrivalProcess arrivals,
                 double rate, double window_s) {
    Scenario s;
    s.name = name;
    s.config.num_cells = cells;
    s.config.seed = 90210;
    s.config.workload.arrivals = arrivals;
    s.config.workload.arrival_rate_per_s = rate;
    s.config.workload.arrival_window_s = window_s;
    if (!mix_override.empty()) s.config.workload.policy_mix = mix_override;
    scenarios.push_back(std::move(s));
  };
  if (smoke) {
    add("smoke-poisson", 6, sim::ArrivalProcess::kPoisson, 0.3, 120.0);
    add("smoke-diurnal", 8, sim::ArrivalProcess::kDiurnal, 0.5, 150.0);
  } else {
    add("city", 64, sim::ArrivalProcess::kPoisson, 0.5, 600.0);
    add("region", 512, sim::ArrivalProcess::kDiurnal, 0.5, 600.0);
    // ~480 sessions/cell * 2200 cells ~ 1.05M sessions.
    size_t headline_cells = cells_override != 0 ? cells_override : 2200;
    add("million", headline_cells, sim::ArrivalProcess::kPoisson, 0.8, 600.0);
  }

  std::printf("bench_fleet: %zu thread(s), shards=%zu (0 = one per cell)\n\n",
              runner.num_threads(), num_shards);

  std::vector<Row> rows;
  std::vector<std::string> policy_specs;  // pool layout (same for every scenario)
  for (const Scenario& scenario : scenarios) {
    sim::FleetSimulator fleet(scenario.config);
    policy_specs = fleet.policy_specs();
    double start = bench::now_s();
    Row row;
    row.name = scenario.name;
    row.agg = fleet.run(video_ptrs, runner, num_shards);
    row.wall_s = bench::now_s() - start;
    row.rss_mib = peak_rss_mib();

    const sim::FleetAggregates& a = row.agg;
    // Per-pool session counts, keyed by canonical registry spec: the specs
    // are a pure function of the workload config, so including them keeps
    // the row self-describing without breaking cross-thread/shard diffs.
    std::string by_policy;
    // Typed outcome split per pool: completed/abandoned counts (outages are
    // the per-pool remainder).
    std::string split_policy;
    for (size_t k = 0; k < policy_specs.size(); ++k) {
      if (k > 0) {
        by_policy += ' ';
        split_policy += ' ';
      }
      by_policy += policy_specs[k] + '=' + std::to_string(a.sessions_by_policy[k]);
      split_policy += policy_specs[k] + '=' + std::to_string(a.completed_by_policy[k]) +
                      '/' + std::to_string(a.abandoned_by_policy[k]);
    }
    // Determinism row: aggregates only, full precision, no timing. CI diffs
    // these across thread and shard counts.
    std::printf(
        "fleet name=%s cells=%zu sessions=%zu chunks=%zu outages=%zu abandoned=%zu "
        "peak=%zu policies=[%s] qoe_mean=%.9g qoe_p50=%.9g qoe_p90=%.9g "
        "qoe_p99=%.9g bitrate=%.9g rebuffer=%.9g startup=%.9g "
        "completed/abandoned=[%s] timeouts=%zu retries=%zu timeout_outages=%zu "
        "failovers=%zu failed_cells=%zu disrupted=%zu recovered=%zu\n",
        row.name.c_str(), a.cells, a.sessions, a.chunks, a.outages, a.abandoned,
        a.peak_concurrent, by_policy.c_str(), a.session_qoe.mean(),
        a.qoe_sketch.quantile(0.5), a.qoe_sketch.quantile(0.9), a.qoe_sketch.quantile(0.99),
        a.session_bitrate_kbps.mean(), a.session_rebuffer_s.mean(),
        a.startup_delay_s.mean(), split_policy.c_str(), a.timeouts, a.retries,
        a.timeout_outages, a.failovers, a.failed_cells, a.disrupted_sessions,
        a.recovered_sessions);
    std::printf("perf  name=%s wall_s=%.3f sessions_per_s=%.0f chunks_per_s=%.0f "
                "peak_rss_mib=%.1f\n\n",
                row.name.c_str(), row.wall_s,
                static_cast<double>(a.sessions) / row.wall_s,
                static_cast<double>(a.chunks) / row.wall_s, row.rss_mib);
    rows.push_back(std::move(row));
  }

  // ---- JSON ---------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  size_t total_sessions = 0;
  double peak_rate = 0.0;
  double max_rss = 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fleet\",\n");
  std::fprintf(f, "  \"schema_version\": 4,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"config\": {\"threads\": %zu, \"shards\": %zu, \"backend\": \"%s\"},\n",
               runner.num_threads(), num_shards, backend);
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const sim::FleetAggregates& a = row.agg;
    double rate = static_cast<double>(a.sessions) / row.wall_s;
    total_sessions += a.sessions;
    peak_rate = std::max(peak_rate, rate);
    max_rss = std::max(max_rss, row.rss_mib);
    // *_by_policy keys are the canonical registry specs of the mix.
    std::string by_policy_json, completed_json, abandoned_json;
    for (size_t k = 0; k < policy_specs.size(); ++k) {
      if (k > 0) {
        by_policy_json += ", ";
        completed_json += ", ";
        abandoned_json += ", ";
      }
      by_policy_json += "\"" + policy_specs[k] +
                        "\": " + std::to_string(a.sessions_by_policy[k]);
      completed_json += "\"" + policy_specs[k] +
                        "\": " + std::to_string(a.completed_by_policy[k]);
      abandoned_json += "\"" + policy_specs[k] +
                        "\": " + std::to_string(a.abandoned_by_policy[k]);
    }
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"cells\": %zu, \"sessions\": %zu, \"chunks\": %zu, "
        "\"outages\": %zu, \"abandoned\": %zu, \"peak_concurrent\": %zu, "
        "\"sessions_by_policy\": {%s}, "
        "\"completed_by_policy\": {%s}, \"abandoned_by_policy\": {%s}, "
        "\"timeouts\": %zu, \"retries\": %zu, \"timeout_outages\": %zu, "
        "\"failovers\": %zu, \"failed_cells\": %zu, \"disrupted_sessions\": %zu, "
        "\"recovered_sessions\": %zu, "
        "\"qoe_mean\": %.6f, \"qoe_p50\": %.6f, \"qoe_p90\": %.6f, \"qoe_p99\": %.6f, "
        "\"bitrate_mean_kbps\": %.3f, \"rebuffer_mean_s\": %.6f, "
        "\"startup_mean_s\": %.6f, \"wall_s\": %.3f, \"sessions_per_s\": %.1f, "
        "\"chunks_per_s\": %.0f, \"peak_rss_mib\": %.1f}%s\n",
        row.name.c_str(), a.cells, a.sessions, a.chunks, a.outages, a.abandoned,
        a.peak_concurrent, by_policy_json.c_str(), completed_json.c_str(),
        abandoned_json.c_str(), a.timeouts, a.retries, a.timeout_outages, a.failovers,
        a.failed_cells, a.disrupted_sessions, a.recovered_sessions, a.session_qoe.mean(),
        a.qoe_sketch.quantile(0.5), a.qoe_sketch.quantile(0.9), a.qoe_sketch.quantile(0.99),
        a.session_bitrate_kbps.mean(), a.session_rebuffer_s.mean(),
        a.startup_delay_s.mean(), row.wall_s, rate,
        static_cast<double>(a.chunks) / row.wall_s, row.rss_mib,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"summary\": {\"total_sessions\": %zu, \"peak_sessions_per_s\": %.1f, "
               "\"peak_rss_mib\": %.1f}\n",
               total_sessions, peak_rate, max_rss);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (total sessions %zu)\n", out_path.c_str(), total_sessions);
  return 0;
}
