// Figure 6: potential gains of dynamic-sensitivity awareness under an
// idealized setting — both planners see the whole throughput trace; they
// differ only in the QoE model they maximize (sensitivity-aware vs not).
// Paper: 22-52% higher QoE at the same bandwidth, 39-49% bandwidth savings
// at the same QoE; gains shrink as bandwidth grows.
#include <cstdio>

#include "abr/offline_optimal.h"
#include "bench_util.h"
#include "core/experiments.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;
using core::Experiments;

int main(int argc, char** argv) {
  // plan_offline probes the trace at every DP node; the integration mode
  // (`--trace-integration indexed|walker`) must not change a digit.
  bench::trace_integration_arg(argc, argv);
  const auto& videos = Experiments::videos();
  const auto& oracle = Experiments::oracle();
  const auto& weights = Experiments::weights();
  net::ThroughputTrace base_trace = Experiments::traces()[4];  // ~1.9 Mbps broadband

  std::printf("%s",
              util::banner("Figure 6: idealized sensitivity-aware vs -unaware ABR "
                           "(offline planning, trace rescaled)")
                  .c_str());
  util::Table table({"scale", "mean Mbps", "unaware QoE", "aware QoE", "QoE gain %"});
  // One scratch across the whole sweep: every plan_offline reuses the
  // high-water memo allocation instead of re-faulting tens of MB per session.
  abr::OfflineScratch scratch;
  for (double scale : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto trace = base_trace.scaled(scale);
    util::Accumulator unaware_acc, aware_acc;
    for (size_t v = 0; v < videos.size(); ++v) {
      const auto& video = videos[v];
      std::vector<double> ones(video.num_chunks(), 1.0);
      abr::OfflineConfig unaware_cfg;
      unaware_cfg.rebuffer_options = {0.0};
      abr::OfflineConfig aware_cfg;
      aware_cfg.rebuffer_options = {0.0, 1.0, 2.0};
      auto s_unaware = abr::plan_offline(video, trace, ones, unaware_cfg, scratch);
      auto s_aware = abr::plan_offline(video, trace, weights[v], aware_cfg, scratch);
      unaware_acc.add(oracle.score(s_unaware.to_rendered(video)));
      aware_acc.add(oracle.score(s_aware.to_rendered(video)));
    }
    double gain = (aware_acc.mean() - unaware_acc.mean()) / unaware_acc.mean() * 100.0;
    table.add_row(std::vector<double>{scale, trace.mean_kbps() / 1000.0,
                                      unaware_acc.mean(), aware_acc.mean(), gain},
                  3);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(paper: aware ABR gains are largest at constrained bandwidth)\n");
  return 0;
}
