// Figure 5: rank correlation (Spearman) between QoE series generated with
// different incident types, per source video. The paper finds strong rank
// correlation across incident types, supporting the single-weight-per-chunk
// abstraction.
#include <cstdio>

#include "bench_util.h"
#include "media/dataset.h"
#include "util/stats.h"

using namespace sensei;

int main() {
  crowd::GroundTruthQoE oracle;
  media::Encoder encoder;

  std::printf("%s", util::banner(
                        "Figure 5: QoE rank correlation between quality incidents, "
                        "per source video")
                        .c_str());
  util::Table table({"video", "(a) 1-s vs 4-s rebuffering", "(b) 1-s rebuf vs bitrate drop"});
  std::vector<double> all_a, all_b;
  uint64_t seed = 500;
  for (const auto& source : media::Dataset::test_set()) {
    media::EncodedVideo video = encoder.encode(source);
    auto mos1 = bench::crowdsourced_mos(oracle, video, sim::rebuffer_series(video, 1.0),
                                        24, seed++);
    auto mos4 = bench::crowdsourced_mos(oracle, video, sim::rebuffer_series(video, 4.0),
                                        24, seed++);
    auto mosd = bench::crowdsourced_mos(oracle, video,
                                        sim::bitrate_drop_series(video, 0, 1), 24, seed++);
    double a = util::spearman(mos1, mos4);
    double b = util::spearman(mos1, mosd);
    all_a.push_back(a);
    all_b.push_back(b);
    table.add_row({source.name(), util::Table::format_double(a, 2),
                   util::Table::format_double(b, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("mean SRCC: (a)=%.2f (b)=%.2f (paper: both strongly positive)\n",
              util::mean(all_a), util::mean(all_b));
  return 0;
}
