// Resilience bench: QoE and recovery-rate curves as fault intensity rises.
//
// Each sweep point runs the FleetSimulator with one ABR policy, session
// resilience enabled (request timeouts, bounded retries with exponential
// backoff, lower-rung re-requests), and a seeded fault load — trace outages,
// capacity collapses, RTT spikes, plus hard cell failures with failover to a
// degraded fallback link — scaled by an intensity knob. Intensity 0 is the
// control: resilience armed, nothing injected. Emits machine-readable
// BENCH_resilience.json (schema in bench/README.md).
//
//   ./bench_resilience                 full sweep (3 policies x 4 intensities)
//   ./bench_resilience --smoke         reduced sweep for CI (~seconds)
//   ./bench_resilience --out FILE      JSON destination
//   ./bench_resilience --threads N     ExperimentRunner pool size
//   ./bench_resilience --shards N      cells per fan-out block (0 = one per cell)
//   ./bench_resilience --baseline FILE validate a pinned JSON's schema
//   ./bench_resilience --policy SPEC   replace the default policy set with the
//                                      given registry specs (repeatable)
//
// Two kinds of output lines, as in bench_fleet:
//  - "resilience ..." rows: per-sweep aggregates printed with %.9g and no
//    timing — CI diffs these byte-for-byte across --threads 1/4 and across
//    --shards values (fault realizations are pure functions of (config,
//    seed, cell), so they must survive any parallel decomposition).
//  - "perf ..." rows: wall time and throughput — informational, never diffed.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/fault.h"
#include "sim/fleet.h"

using namespace sensei;

namespace {

size_t count_arg(int argc, char** argv, const char* flag, size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      char* end = nullptr;
      long n = (i + 1 < argc) ? std::strtol(argv[i + 1], &end, 10) : -1;
      if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' || n < 0) {
        std::fprintf(stderr, "error: %s requires a non-negative integer\n", flag);
        std::exit(2);
      }
      return static_cast<size_t>(n);
    }
  }
  return fallback;
}

struct Row {
  std::string policy;
  double intensity = 0.0;
  sim::FleetAggregates agg;
  double recovery_rate = 1.0;
  double wall_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::check_flags(argc, argv,
                     {"--out", "--threads", "--shards", "--baseline", "--policy"},
                     {"--smoke"},
                     "bench_resilience [--smoke] [--out FILE] [--threads N] [--shards N] "
                     "[--baseline FILE] [--policy SPEC]...");
  const bool smoke = bench::smoke_arg(argc, argv);
  const std::string out_path = bench::out_arg(argc, argv, "BENCH_resilience.json");
  const std::string baseline_path = bench::baseline_arg(argc, argv);
  if (!baseline_path.empty()) {
    // Schema v1: per-(policy, intensity) rows with the resilience counters
    // and the recovery rate the sweep exists to measure.
    bench::check_baseline_fields(baseline_path, 1,
                                 {"\"intensity\"", "\"recovery_rate\"", "\"timeouts\"",
                                  "\"timeout_outages\"", "\"failovers\"",
                                  "\"failed_cells\"", "\"disrupted_sessions\"",
                                  "\"recovered_sessions\"", "\"qoe_mean\""});
  }
  const size_t num_shards = count_arg(argc, argv, "--shards", 0);
  core::ExperimentRunner runner(bench::threads_arg(argc, argv));

  std::vector<std::string> policies = bench::policy_specs_arg(argc, argv);
  if (policies.empty()) policies = {"bba", "whittle", "fugu:planner=vi"};
  std::vector<double> intensities = smoke ? std::vector<double>{0.0, 1.0}
                                          : std::vector<double>{0.0, 0.5, 1.0, 2.0};

  // Shared video pool, as bench_fleet streams it.
  media::Encoder encoder;
  std::vector<media::EncodedVideo> videos;
  const media::Genre genres[] = {media::Genre::kSports, media::Genre::kNature,
                                 media::Genre::kGaming, media::Genre::kAnimation};
  for (size_t i = 0; i < 4; ++i) {
    videos.push_back(encoder.encode(
        media::SourceVideo::generate("Resil" + std::to_string(i), genres[i], 120.0)));
  }
  std::vector<const media::EncodedVideo*> video_ptrs;
  for (const auto& v : videos) video_ptrs.push_back(&v);

  // One fleet template; each sweep point swaps the policy and the fault load.
  sim::FleetConfig base;
  base.num_cells = smoke ? 6 : 24;
  base.seed = 77001;
  base.workload.arrivals = sim::ArrivalProcess::kPoisson;
  base.workload.arrival_rate_per_s = 0.3;
  base.workload.arrival_window_s = 240.0;
  // Session resilience: 8 s request timeout, up to 3 retries at one rung
  // lower, 0.5 s..4 s exponential backoff with 10% deterministic jitter.
  base.player.resilience.request_timeout_s = 8.0;
  base.player.resilience.max_retries = 3;
  base.player.resilience.backoff_base_s = 0.5;
  base.player.resilience.backoff_factor = 2.0;
  base.player.resilience.backoff_max_s = 4.0;
  base.player.resilience.backoff_jitter_frac = 0.1;
  base.player.resilience.jitter_seed = 4242;
  base.player.resilience.retry_lower_rung = true;

  // Unit-intensity fault load per cell, scaled by the sweep knob.
  net::RandomFaultSpec unit;
  unit.horizon_s = 400.0;
  unit.mean_outages = 3.0;
  unit.outage_mean_duration_s = 4.0;
  unit.mean_collapses = 2.0;
  unit.collapse_mean_duration_s = 25.0;
  unit.collapse_factor = 0.15;
  unit.mean_rtt_spikes = 3.0;
  unit.rtt_spike_mean_duration_s = 12.0;
  unit.rtt_spike_extra_s = 0.8;

  std::printf("bench_resilience: %zu thread(s), shards=%zu (0 = one per cell)\n\n",
              runner.num_threads(), num_shards);

  std::vector<Row> rows;
  for (const std::string& policy : policies) {
    for (double intensity : intensities) {
      sim::FleetConfig config = base;
      config.workload.policy_mix = {{policy, 1.0}};
      config.faults.trace_faults = unit.scaled(intensity);
      config.faults.cell_failure_fraction = std::min(1.0, 0.25 * intensity);
      config.faults.reconnect_delay_s = 2.0;
      config.faults.fallback_scale = 0.5;

      sim::FleetSimulator fleet(config);
      double start = bench::now_s();
      Row row;
      row.policy = policy;
      row.intensity = intensity;
      row.agg = fleet.run(video_ptrs, runner, num_shards);
      row.wall_s = bench::now_s() - start;
      const sim::FleetAggregates& a = row.agg;
      // Recovery rate: of the sessions that hit >= 1 timeout or failover,
      // the fraction that still did not end in an outage. 1 when nothing
      // was disrupted (nothing to recover from).
      row.recovery_rate =
          a.disrupted_sessions > 0
              ? static_cast<double>(a.recovered_sessions) /
                    static_cast<double>(a.disrupted_sessions)
              : 1.0;

      std::printf(
          "resilience policy=%s intensity=%.9g cells=%zu sessions=%zu chunks=%zu "
          "outages=%zu timeout_outages=%zu abandoned=%zu timeouts=%zu retries=%zu "
          "failovers=%zu failed_cells=%zu disrupted=%zu recovered=%zu "
          "recovery_rate=%.9g qoe_mean=%.9g qoe_p50=%.9g qoe_p90=%.9g "
          "rebuffer=%.9g startup=%.9g\n",
          policy.c_str(), intensity, a.cells, a.sessions, a.chunks, a.outages,
          a.timeout_outages, a.abandoned, a.timeouts, a.retries, a.failovers,
          a.failed_cells, a.disrupted_sessions, a.recovered_sessions,
          row.recovery_rate, a.session_qoe.mean(), a.qoe_sketch.quantile(0.5),
          a.qoe_sketch.quantile(0.9), a.session_rebuffer_s.mean(),
          a.startup_delay_s.mean());
      std::printf("perf  policy=%s intensity=%.2f wall_s=%.3f sessions_per_s=%.0f\n\n",
                  policy.c_str(), intensity, row.wall_s,
                  static_cast<double>(a.sessions) / row.wall_s);
      rows.push_back(std::move(row));
    }
  }

  // ---- JSON ---------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  size_t total_sessions = 0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"resilience\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"config\": {\"threads\": %zu, \"shards\": %zu, \"cells\": %zu, "
               "\"request_timeout_s\": %.3f, \"max_retries\": %zu, "
               "\"reconnect_delay_s\": %.3f, \"fallback_scale\": %.3f},\n",
               runner.num_threads(), num_shards, base.num_cells,
               base.player.resilience.request_timeout_s,
               base.player.resilience.max_retries, 2.0, 0.5);
  std::fprintf(f, "  \"sweeps\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const sim::FleetAggregates& a = row.agg;
    total_sessions += a.sessions;
    std::fprintf(
        f,
        "    {\"policy\": \"%s\", \"intensity\": %.3f, \"cells\": %zu, "
        "\"sessions\": %zu, \"chunks\": %zu, \"outages\": %zu, "
        "\"timeout_outages\": %zu, \"abandoned\": %zu, \"timeouts\": %zu, "
        "\"retries\": %zu, \"failovers\": %zu, \"failed_cells\": %zu, "
        "\"disrupted_sessions\": %zu, \"recovered_sessions\": %zu, "
        "\"recovery_rate\": %.6f, \"qoe_mean\": %.6f, \"qoe_p50\": %.6f, "
        "\"qoe_p90\": %.6f, \"rebuffer_mean_s\": %.6f, \"startup_mean_s\": %.6f, "
        "\"wall_s\": %.3f}%s\n",
        row.policy.c_str(), row.intensity, a.cells, a.sessions, a.chunks, a.outages,
        a.timeout_outages, a.abandoned, a.timeouts, a.retries, a.failovers,
        a.failed_cells, a.disrupted_sessions, a.recovered_sessions, row.recovery_rate,
        a.session_qoe.mean(), a.qoe_sketch.quantile(0.5), a.qoe_sketch.quantile(0.9),
        a.session_rebuffer_s.mean(), a.startup_delay_s.mean(), row.wall_s,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"summary\": {\"policies\": %zu, \"intensities\": %zu, "
               "\"total_sessions\": %zu}\n",
               policies.size(), intensities.size(), total_sessions);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (total sessions %zu)\n", out_path.c_str(), total_sessions);
  return 0;
}
