// Figure 12c: crowdsourcing cost (USD per minute of video) vs achieved QoE,
// with and without the two-step cost pruning. Paper: pruning cuts cost by
// ~96.7% with only ~3.1% QoE degradation, landing at ~$31.4/min.
#include <cstdio>

#include "core/experiments.h"
#include "crowd/scheduler.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;
using core::Experiments;

namespace {

// Evaluates the QoE achieved by Sensei-Fugu when driven by the given weight
// vectors, averaged over videos and a trace subset.
double achieved_qoe(const std::vector<std::vector<double>>& weights) {
  const auto& videos = Experiments::videos();
  const auto& traces = Experiments::traces();
  auto sensei_fugu = core::Sensei::make_sensei_fugu();
  util::Accumulator acc;
  for (size_t v = 0; v < videos.size(); ++v) {
    for (size_t t = 0; t < traces.size(); t += 3) {
      acc.add(Experiments::run(videos[v], traces[t], *sensei_fugu, weights[v]).true_qoe);
    }
  }
  return acc.mean();
}

}  // namespace

int main() {
  const auto& oracle = Experiments::oracle();
  // Profile 1-minute clips so cost is naturally USD per minute of video
  // (profiling cost grows with video length; the paper reports per-minute).
  media::Encoder encoder;
  std::vector<media::EncodedVideo> minute_clips;
  for (const auto& source : media::Dataset::test_set()) {
    size_t chunks = std::min<size_t>(15, source.num_chunks());
    minute_clips.push_back(encoder.encode(source.clip(0, chunks, source.name() + "-1min")));
  }

  double pruned_cost = 0.0, full_cost = 0.0, minutes = 0.0;
  std::vector<double> pruned_srcc, full_srcc;
  uint64_t seed = 7000;
  for (const auto& clip : minute_clips) {
    crowd::Scheduler scheduler(oracle, crowd::SchedulerConfig(), seed++);
    auto pruned = scheduler.profile(clip);
    auto full = scheduler.profile_exhaustive(clip, 30);
    pruned_cost += pruned.cost_usd;
    full_cost += full.cost_usd;
    minutes += clip.source().duration_s() / 60.0;
    auto s = clip.source().true_sensitivity();
    pruned_srcc.push_back(util::spearman(pruned.weights, s));
    full_srcc.push_back(util::spearman(full.weights, s));
  }

  // End-to-end QoE with full-length profiles vs pruned profiles.
  const auto& pruned_weights = Experiments::weights();  // two-step pruned pipeline
  double qoe_pruned = achieved_qoe(pruned_weights);

  std::printf("%s", util::banner("Figure 12c: crowdsourcing cost vs QoE").c_str());
  util::Table table({"configuration", "USD per min", "weight SRCC", "QoE (Sensei-Fugu)"});
  table.add_row({"SENSEI w/ cost pruning",
                 util::Table::format_double(pruned_cost / minutes, 1),
                 util::Table::format_double(util::mean(pruned_srcc), 2),
                 util::Table::format_double(qoe_pruned, 3)});
  table.add_row({"SENSEI w/o cost pruning",
                 util::Table::format_double(full_cost / minutes, 1),
                 util::Table::format_double(util::mean(full_srcc), 2), "(upper bound)"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("cost reduction from pruning: %.1f%% (paper: 96.7%%)\n",
              (1.0 - pruned_cost / full_cost) * 100.0);
  std::printf("pruned cost: $%.1f per 1-minute video (paper: $31.4)\n",
              pruned_cost / minutes);
  return 0;
}
