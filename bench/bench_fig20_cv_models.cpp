// Figure 20 / Appendix D: per-chunk quality sensitivity estimated by
// computer-vision importance models (AMVM, DSN, Video2GIF) vs the user
// study, on Lava, Tank, Animal and Soccer2. Paper: CV importance does not
// track true sensitivity.
#include <cstdio>

#include "bench_util.h"
#include "crowd/scheduler.h"
#include "cv/cv_models.h"
#include "media/dataset.h"
#include "util/stats.h"

using namespace sensei;

int main() {
  crowd::GroundTruthQoE oracle;
  media::Encoder encoder;
  uint64_t seed = 2000;

  std::printf("%s", util::banner(
                        "Figure 20: quality-sensitivity estimates — user study vs "
                        "CV models (first 5 chunks per video)")
                        .c_str());
  std::vector<double> cv_corrs, study_corrs;
  for (const char* name : {"Lava", "Tank", "Animal", "Soccer2"}) {
    auto source = media::Dataset::by_name(name);
    auto video = encoder.encode(source);

    // "User study": profiled weights from the crowdsourcing pipeline.
    crowd::Scheduler scheduler(oracle, crowd::SchedulerConfig(), seed++);
    auto profile = scheduler.profile(video);
    auto study = util::normalize01(profile.weights);

    auto cv_results = cv::run_all(source);
    util::Table table({"chunk", "user study", "AMVM", "DSN", "video2gif"});
    for (size_t c = 0; c < 5 && c < source.num_chunks(); ++c) {
      table.add_row(std::vector<double>{static_cast<double>(c + 1), study[c],
                                        cv_results[0].scores[c], cv_results[1].scores[c],
                                        cv_results[2].scores[c]},
                    2);
    }
    std::printf("(%s)\n%s", name, table.to_string().c_str());

    auto s_true = source.true_sensitivity();
    study_corrs.push_back(util::spearman(profile.weights, s_true));
    for (const auto& r : cv_results) {
      cv_corrs.push_back(util::spearman(r.scores, s_true));
    }
  }
  std::printf("\nSRCC vs hidden true sensitivity: user-study weights mean %.2f, "
              "CV models mean %.2f (paper: CV trends are not aligned)\n",
              util::mean(study_corrs), util::mean(cv_corrs));
  return 0;
}
