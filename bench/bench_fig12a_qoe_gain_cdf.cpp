// Figure 12a: distribution (CDF) of QoE gains over BBA for SENSEI, Pensieve
// and Fugu across all 16 videos x 10 traces. Paper: SENSEI's median gain
// ~14.4% vs ~5.7% for Pensieve/Fugu.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "util/stats.h"

using namespace sensei;
using core::Experiments;

int main() {
  const auto& videos = Experiments::videos();
  const auto& traces = Experiments::traces();
  const auto& weights = Experiments::weights();

  abr::BbaAbr bba;
  auto fugu = core::Sensei::make_fugu();
  auto sensei_fugu = core::Sensei::make_sensei_fugu();
  auto& pensieve = Experiments::pensieve();
  auto& sensei_pensieve = Experiments::sensei_pensieve();

  std::vector<double> gain_sensei, gain_pensieve, gain_fugu, gain_sensei_pen;
  const std::vector<double> none;
  for (size_t v = 0; v < videos.size(); ++v) {
    for (const auto& trace : traces) {
      double q_bba = Experiments::run(videos[v], trace, bba, none).true_qoe;
      if (q_bba < 0.02) continue;  // avoid exploding ratios on degenerate runs
      double q_fugu = Experiments::run(videos[v], trace, *fugu, none).true_qoe;
      double q_pen = Experiments::run(videos[v], trace, pensieve, none).true_qoe;
      double q_sf = Experiments::run(videos[v], trace, *sensei_fugu, weights[v]).true_qoe;
      double q_sp =
          Experiments::run(videos[v], trace, sensei_pensieve, weights[v]).true_qoe;
      gain_fugu.push_back((q_fugu - q_bba) / q_bba * 100.0);
      gain_pensieve.push_back((q_pen - q_bba) / q_bba * 100.0);
      gain_sensei.push_back((q_sf - q_bba) / q_bba * 100.0);
      gain_sensei_pen.push_back((q_sp - q_bba) / q_bba * 100.0);
    }
  }

  bench::print_cdf("Figure 12a: QoE gain over BBA — SENSEI (Sensei-Fugu)", gain_sensei);
  bench::print_cdf("Figure 12a: QoE gain over BBA — Fugu", gain_fugu);
  bench::print_cdf("Figure 12a: QoE gain over BBA — Pensieve", gain_pensieve);
  bench::print_cdf("Figure 12a: QoE gain over BBA — Sensei-Pensieve", gain_sensei_pen);

  std::printf("medians: SENSEI %+.1f%%, Fugu %+.1f%%, Pensieve %+.1f%%, "
              "Sensei-Pensieve %+.1f%%\n",
              util::median(gain_sensei), util::median(gain_fugu),
              util::median(gain_pensieve), util::median(gain_sensei_pen));
  std::printf("(paper: SENSEI median +14.4%%, Pensieve/Fugu ~+5.7%%; our RL substrate "
              "is weaker than A3C, so the Fugu family carries the headline here — see "
              "EXPERIMENTS.md)\n");
  return 0;
}
