// Figure 17: QoE under increasing throughput variance — Gaussian noise of
// growing standard deviation added to one trace. Paper: SENSEI's QoE
// degrades with variance but keeps a clear gain over its base ABR.
// An appendix sweep over the weight-horizon h backs §5.1's choice of h = 5.
#include <cstdio>

#include "core/experiments.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;
using core::Experiments;

namespace {

double mean_qoe(sim::AbrPolicy& policy, const net::ThroughputTrace& trace,
                bool use_weights) {
  const auto& videos = Experiments::videos();
  const auto& weights = Experiments::weights();
  const std::vector<double> none;
  util::Accumulator acc;
  for (size_t v = 0; v < videos.size(); ++v) {
    acc.add(Experiments::run(videos[v], trace, policy, use_weights ? weights[v] : none)
                .true_qoe);
  }
  return acc.mean();
}

}  // namespace

int main() {
  net::ThroughputTrace base = Experiments::traces()[5];  // ~2 Mbps cellular

  auto fugu = core::Sensei::make_fugu();
  auto sensei_fugu = core::Sensei::make_sensei_fugu();
  auto& pensieve = Experiments::pensieve();
  auto& sensei_pensieve = Experiments::sensei_pensieve();

  std::printf("%s", util::banner("Figure 17: QoE under increasing bandwidth variance")
                        .c_str());
  util::Table table({"added noise sd (Kbps)", "Sensei-Fugu", "Fugu", "Sensei-Pensieve",
                     "Pensieve"});
  for (double sigma : {0.0, 300.0, 600.0, 900.0, 1200.0, 1500.0}) {
    auto trace = sigma > 0 ? base.with_noise(sigma, 1700 + static_cast<uint64_t>(sigma))
                           : base;
    table.add_row(std::vector<double>{sigma, mean_qoe(*sensei_fugu, trace, true),
                                      mean_qoe(*fugu, trace, false),
                                      mean_qoe(sensei_pensieve, trace, true),
                                      mean_qoe(pensieve, trace, false)},
                  3);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Appendix: weight-horizon sweep (paper: QoE gains flatten beyond h = 4).
  std::printf("%s", util::banner("Horizon ablation: QoE vs weight horizon h").c_str());
  util::Table horizon_table({"h", "Sensei-Fugu QoE"});
  for (size_t h : {1, 2, 3, 4, 5, 6}) {
    abr::FuguConfig cfg;
    cfg.use_weights = true;
    cfg.rebuffer_options = {0.0, 1.0, 2.0};
    cfg.horizon = h;
    abr::FuguAbr policy(cfg);
    sim::PlayerConfig player_cfg;
    player_cfg.weight_horizon = h;
    const auto& videos = Experiments::videos();
    const auto& weights = Experiments::weights();
    sim::Player player(player_cfg);
    util::Accumulator acc;
    for (size_t v = 0; v < videos.size(); v += 2) {
      auto session = player.stream(videos[v], base, policy, weights[v]);
      acc.add(Experiments::oracle().score(session.to_rendered(videos[v])));
    }
    horizon_table.add_row(std::vector<double>{static_cast<double>(h), acc.mean()}, 3);
  }
  std::printf("%s", horizon_table.to_string().c_str());
  std::printf("\n(paper: gains flatten beyond a horizon of 4; h=5 is the default)\n");
  return 0;
}
