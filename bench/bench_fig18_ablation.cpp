// Figure 18: understanding SENSEI's improvements.
// (a) Impact of the base ABR logic: gains over BBA for Fugu and Pensieve,
//     vanilla vs SENSEI variants.
// (b) Breakdown of SENSEI's improvement: base ABR with KSQI objective ->
//     + sensitivity-weighted objective (bitrate adaptation only) ->
//     + new adaptation action (scheduled rebuffering) = full SENSEI.
#include <cstdio>

#include "core/experiments.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;
using core::Experiments;

namespace {

// Median gain over BBA across the evaluation matrix (medians, as in Figure
// 12a's distribution view — means are dominated by a few catastrophic
// low-bandwidth sessions of the RL policies).
double median_gain_over_bba(sim::AbrPolicy& policy, bool use_weights) {
  const auto& videos = Experiments::videos();
  const auto& traces = Experiments::traces();
  const auto& weights = Experiments::weights();
  const std::vector<double> none;
  abr::BbaAbr bba;
  std::vector<double> gains;
  for (size_t v = 0; v < videos.size(); ++v) {
    for (const auto& trace : traces) {
      double q_bba = Experiments::run(videos[v], trace, bba, none).true_qoe;
      if (q_bba < 0.02) continue;
      double q =
          Experiments::run(videos[v], trace, policy, use_weights ? weights[v] : none)
              .true_qoe;
      gains.push_back((q - q_bba) / q_bba * 100.0);
    }
  }
  return util::median(gains);
}

}  // namespace

int main() {
  auto fugu = core::Sensei::make_fugu();
  auto sensei_fugu = core::Sensei::make_sensei_fugu();
  auto sensei_fugu_bitrate_only = core::Sensei::make_sensei_fugu_bitrate_only();
  auto& pensieve = Experiments::pensieve();
  auto& sensei_pensieve = Experiments::sensei_pensieve();

  std::printf("%s", util::banner("Figure 18a: impact of the base ABR logic").c_str());
  util::Table a({"base ABR", "base median gain over BBA %", "SENSEI median gain over BBA %"});
  a.add_row({"Fugu", util::Table::format_double(median_gain_over_bba(*fugu, false), 1),
             util::Table::format_double(median_gain_over_bba(*sensei_fugu, true), 1)});
  a.add_row({"Pensieve",
             util::Table::format_double(median_gain_over_bba(pensieve, false), 1),
             util::Table::format_double(median_gain_over_bba(sensei_pensieve, true), 1)});
  std::printf("%s\n", a.to_string().c_str());

  std::printf("%s", util::banner("Figure 18b: breakdown of SENSEI's improvement "
                                 "(Fugu base)")
                        .c_str());
  util::Table b({"configuration", "median gain over BBA %"});
  b.add_row({"base ABR w/ KSQI objective",
             util::Table::format_double(median_gain_over_bba(*fugu, false), 1)});
  b.add_row({"+ weighted objective (bitrate adaptation only)",
             util::Table::format_double(
                 median_gain_over_bba(*sensei_fugu_bitrate_only, true), 1)});
  b.add_row({"full SENSEI (+ scheduled rebuffering)",
             util::Table::format_double(median_gain_over_bba(*sensei_fugu, true), 1)});
  std::printf("%s", b.to_string().c_str());
  std::printf("\n(paper: both steps help; the objective change contributes more than "
              "the new action)\n");
  return 0;
}
