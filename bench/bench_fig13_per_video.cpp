// Figure 13: QoE gain over BBA per source video (grouped by genre), averaged
// across traces. Paper: large variability across videos even within a genre.
#include <cstdio>

#include "core/experiments.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;
using core::Experiments;

int main() {
  const auto& videos = Experiments::videos();
  const auto& traces = Experiments::traces();
  const auto& weights = Experiments::weights();

  abr::BbaAbr bba;
  auto fugu = core::Sensei::make_fugu();
  auto sensei_fugu = core::Sensei::make_sensei_fugu();
  auto& pensieve = Experiments::pensieve();

  std::printf("%s", util::banner(
                        "Figure 13: QoE gain over BBA per source video (grouped by genre)")
                        .c_str());
  util::Table table({"video", "genre", "SENSEI %", "Pensieve %", "Fugu %"});
  const std::vector<double> none;
  std::vector<double> sensei_gains;
  for (size_t v = 0; v < videos.size(); ++v) {
    util::Accumulator g_sensei, g_pen, g_fugu;
    for (const auto& trace : traces) {
      double q_bba = Experiments::run(videos[v], trace, bba, none).true_qoe;
      if (q_bba < 0.02) continue;
      g_sensei.add((Experiments::run(videos[v], trace, *sensei_fugu, weights[v]).true_qoe -
                    q_bba) /
                   q_bba * 100.0);
      g_pen.add(
          (Experiments::run(videos[v], trace, pensieve, none).true_qoe - q_bba) / q_bba *
          100.0);
      g_fugu.add(
          (Experiments::run(videos[v], trace, *fugu, none).true_qoe - q_bba) / q_bba *
          100.0);
    }
    sensei_gains.push_back(g_sensei.mean());
    table.add_row({videos[v].source().name(),
                   media::to_string(videos[v].source().genre()),
                   util::Table::format_double(g_sensei.mean(), 1),
                   util::Table::format_double(g_pen.mean(), 1),
                   util::Table::format_double(g_fugu.mean(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("per-video SENSEI gain spread: sd=%.1f%% (paper: gains vary strongly even "
              "within a genre)\n",
              util::stddev(sensei_gains));
  return 0;
}
