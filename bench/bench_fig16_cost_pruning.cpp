// Figure 16: QoE-model accuracy (PLCC of inferred weights' model vs held-out
// MOS) as the scheduler's cost knobs are tightened: (a) bitrate levels B,
// (b) rebuffering levels F, (c) raters per video M, (d) filtering threshold
// alpha. Paper: each knob can be reduced to its "sweet spot" with <3%
// accuracy loss while cutting cost dramatically.
//
// Section 2 reproduces the §4.1 sanity check: MTurk-style MOS vs dense
// ("in-lab") rating agreement within a few percent.
#include <cstdio>

#include "bench_util.h"
#include "crowd/scheduler.h"
#include "media/dataset.h"
#include "qoe/sensei_qoe.h"
#include "util/stats.h"

using namespace sensei;

namespace {

struct SweepResult {
  double cost_usd = 0.0;
  double plcc = 0.0;
};

// Profiles the probe videos under `config`, then measures how well the
// resulting weighted model predicts held-out MOS of a mixed-incident series.
SweepResult evaluate(const crowd::SchedulerConfig& config, uint64_t seed) {
  crowd::GroundTruthQoE oracle;
  media::Encoder encoder;
  SweepResult out;
  std::vector<double> pred, truth;
  for (const char* name : {"Soccer1", "Tank", "Space"}) {
    auto source = media::Dataset::by_name(name);
    auto clip = encoder.encode(source.clip(0, 15, std::string(name) + "-probe"));
    crowd::Scheduler scheduler(oracle, config, seed++);
    auto profile = scheduler.profile(clip);
    out.cost_usd += profile.cost_usd;

    qoe::SenseiQoeModel model(profile.weights);
    auto holdout = sim::rebuffer_series(clip, 2.0);
    auto drops = sim::bitrate_drop_series(clip, 1, 2);
    holdout.insert(holdout.end(), drops.begin(), drops.end());
    for (const auto& v : holdout) {
      pred.push_back(model.predict(v));
      truth.push_back(oracle.score(v));
    }
  }
  out.plcc = util::pearson(pred, truth);
  return out;
}

}  // namespace

int main() {
  std::printf("%s", util::banner("Figure 16: QoE model accuracy vs crowdsourcing cost")
                        .c_str());

  util::Table a({"(a) bitrate levels B", "cost USD", "PLCC"});
  for (size_t b : {1, 2, 4}) {
    crowd::SchedulerConfig cfg;
    cfg.bitrate_levels = b;
    auto r = evaluate(cfg, 160 + b);
    a.add_row({std::to_string(b), util::Table::format_double(r.cost_usd, 0),
               util::Table::format_double(r.plcc, 2)});
  }
  std::printf("%s\n", a.to_string().c_str());

  util::Table f({"(b) rebuffering levels F", "cost USD", "PLCC"});
  for (size_t fl : {1, 2, 4}) {
    crowd::SchedulerConfig cfg;
    cfg.rebuffer_levels = fl;
    auto r = evaluate(cfg, 170 + fl);
    f.add_row({std::to_string(fl), util::Table::format_double(r.cost_usd, 0),
               util::Table::format_double(r.plcc, 2)});
  }
  std::printf("%s\n", f.to_string().c_str());

  util::Table m({"(c) raters per video M1+M2", "cost USD", "PLCC"});
  for (size_t raters : {5, 10, 20, 30}) {
    crowd::SchedulerConfig cfg;
    cfg.m1 = raters;
    cfg.m2 = raters / 2;
    auto r = evaluate(cfg, 180 + raters);
    m.add_row({std::to_string(raters), util::Table::format_double(r.cost_usd, 0),
               util::Table::format_double(r.plcc, 2)});
  }
  std::printf("%s\n", m.to_string().c_str());

  util::Table al({"(d) filtering threshold alpha", "cost USD", "PLCC"});
  for (double alpha : {0.0, 0.06, 0.15, 0.3}) {
    crowd::SchedulerConfig cfg;
    cfg.alpha = alpha;
    auto r = evaluate(cfg, 190 + static_cast<uint64_t>(alpha * 100));
    al.add_row({util::Table::format_double(alpha, 2),
                util::Table::format_double(r.cost_usd, 0),
                util::Table::format_double(r.plcc, 2)});
  }
  std::printf("%s\n", al.to_string().c_str());

  // --- §4.1 sanity check: sparse crowdsourced MOS vs dense "in-lab" MOS. ---
  crowd::GroundTruthQoE oracle;
  media::Encoder encoder;
  auto clip = encoder.encode(media::Dataset::soccer1_clip());
  auto series = sim::rebuffer_series(clip, 1.0);
  auto mturk = bench::crowdsourced_mos(oracle, clip, series, 30, 901);
  auto inlab = bench::crowdsourced_mos(oracle, clip, series, 150, 902);
  double diff = 0.0;
  for (size_t i = 0; i < mturk.size(); ++i) {
    diff += std::abs(mturk[i] - inlab[i]) / std::max(0.05, inlab[i]);
  }
  std::printf("MTurk-style vs dense in-lab-style MOS: mean relative difference %.1f%% "
              "(paper: <3%%)\n",
              diff / mturk.size() * 100.0);
  return 0;
}
