// Multi-session simulator bench: how many concurrent contending viewers the
// event loop sustains, and the determinism/identity gates that make the
// numbers trustworthy. Emits machine-readable BENCH_multisession.json
// (schema in bench/README.md).
//
//   ./bench_multisession                       full sweep (~1 min)
//   ./bench_multisession --smoke               reduced sweep for CI (~5 s)
//   ./bench_multisession --out FILE            JSON destination
//   ./bench_multisession --threads N           ExperimentRunner pool size
//   ./bench_multisession --trace-integration indexed|walker
//   ./bench_multisession --baseline FILE       validate a pinned JSON's schema
//
// Three sections:
//  1. identity — single sessions driven through the Simulator on a
//     dedicated link, diffed field-by-field against Player::stream (the
//     tests/test_simulator.cpp gate, re-run here on every bench); any diff
//     fails the process.
//  2. grid — Experiments::run_multisession_grid cells printed as
//     deterministic "grid ..." rows. CI diffs these across --threads 1/4
//     and across --trace-integration modes: they must be byte-identical.
//  3. scale — staggered-arrival contention scenarios on one shared
//     bottleneck sized N x a per-viewer fair share, up to >= 1000 concurrent
//     sessions; reports wall time and sessions/s. Fugu runs twice, once per
//     planner mode (dp = exact, vi = discretized value iteration), and the
//     JSON pins both the sessions/s speedup and the vi-vs-dp mean-QoE delta
//     ("fugu_compare"); the Whittle index policy runs the same population
//     and is pinned against both ("whittle_compare").
//
// Every policy is built from an abr::PolicyRegistry spec string; extra
// `--policy SPEC` flags append scale scenarios without recompiling.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "abr/planner.h"
#include "abr/registry.h"
#include "bench_util.h"
#include "core/experiments.h"
#include "core/runner.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/player.h"
#include "sim/simulator.h"

using namespace sensei;

namespace {

struct CellAggregate {
  size_t sessions = 0;
  size_t chunks = 0;
  size_t outages = 0;
  double mean_bitrate_kbps = 0.0;
  double total_rebuffer_s = 0.0;
  double dl_checksum_s = 0.0;  // sum of download times: a bit-level digest
};

CellAggregate aggregate(const std::vector<sim::MultiSessionResult>& cell) {
  CellAggregate agg;
  agg.sessions = cell.size();
  double bitrate_sum = 0.0;
  for (const sim::MultiSessionResult& r : cell) {
    agg.chunks += r.session.chunks().size();
    if (r.session.outcome() == sim::SessionOutcome::kOutage) ++agg.outages;
    bitrate_sum += r.session.mean_bitrate_kbps();
    agg.total_rebuffer_s += r.session.total_rebuffer_s();
    for (const sim::ChunkRecord& c : r.session.chunks()) agg.dl_checksum_s += c.download_time_s;
  }
  agg.mean_bitrate_kbps = cell.empty() ? 0.0 : bitrate_sum / static_cast<double>(cell.size());
  return agg;
}

// Mean per-chunk QoE over every session in a run, under the default chunk
// quality parameters: the fixed yardstick behind the discretized-vs-exact
// delta pinned in the JSON. Stalls are charged as recorded (rebuffer_s
// already includes the scheduled portion).
double mean_chunk_qoe(const std::vector<sim::MultiSessionResult>& results) {
  qoe::ChunkQualityParams params;
  double sum = 0.0;
  size_t n = 0;
  for (const sim::MultiSessionResult& r : results) {
    const auto& chunks = r.session.chunks();
    for (size_t i = 0; i < chunks.size(); ++i) {
      double prev_vq = i > 0 ? chunks[i - 1].visual_quality : chunks[i].visual_quality;
      sum += qoe::chunk_quality(chunks[i].visual_quality, chunks[i].rebuffer_s, prev_vq,
                                params);
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

// Peak number of sessions simultaneously in flight (arrival to last event).
size_t peak_concurrency(const std::vector<sim::MultiSessionResult>& results) {
  std::vector<std::pair<double, int>> edges;
  edges.reserve(results.size() * 2);
  for (const sim::MultiSessionResult& r : results) {
    double duration = r.session.timeline() != nullptr ? r.session.timeline()->duration_s() : 0.0;
    edges.push_back({r.start_s, +1});
    edges.push_back({r.start_s + duration, -1});
  }
  std::sort(edges.begin(), edges.end());
  size_t peak = 0;
  long cur = 0;
  for (const auto& e : edges) {
    cur += e.second;
    peak = std::max(peak, static_cast<size_t>(std::max(0L, cur)));
  }
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  bench::check_flags(argc, argv,
                     {"--out", "--threads", "--trace-integration", "--baseline", "--policy",
                      "--backend"},
                     {"--smoke"},
                     "bench_multisession [--smoke] [--out FILE] [--threads N] "
                     "[--trace-integration indexed|walker] [--baseline FILE] "
                     "[--policy SPEC]... [--backend scalar|simd|auto]");
  const bool smoke = bench::smoke_arg(argc, argv);
  const std::string out_path = bench::out_arg(argc, argv, "BENCH_multisession.json");
  const std::string baseline_path = bench::baseline_arg(argc, argv);
  if (!baseline_path.empty()) {
    // A baseline predating the planner modes (schema v2) or the registry
    // specs + whittle rows (v3) must fail here, not silently diff clean.
    // v4 added the kernel backend dimension (util/kernels).
    bench::check_baseline_fields(baseline_path, 4,
                                 {"\"planner\"", "\"fugu_compare\"", "\"whittle_compare\"",
                                  "\"qoe_delta_vs_exact\"", "\"fugu_vi_sessions_per_s\"",
                                  "\"spec\"", "\"whittle\"", "\"backend\""});
  }
  const net::TraceIntegration integration = bench::trace_integration_arg(argc, argv);
  const char* backend = bench::backend_arg(argc, argv);
  core::ExperimentRunner runner(bench::threads_arg(argc, argv));

  // ---- 1. identity: Simulator (dedicated, single session) vs Player ------
  size_t identity_cells = 0;
  size_t identity_diffs = 0;
  {
    std::vector<media::EncodedVideo> videos;
    media::Encoder encoder;
    videos.push_back(encoder.encode(
        media::SourceVideo::generate("MsIdA", media::Genre::kSports, 120)));
    videos.push_back(encoder.encode(
        media::SourceVideo::generate("MsIdB", media::Genre::kNature, 120)));
    std::vector<net::ThroughputTrace> traces = {
        net::TraceGenerator::cellular("ms-id-cell", 900, 500.0, 41),
        net::TraceGenerator::broadband("ms-id-bb", 2800, 500.0, 42),
        net::ThroughputTrace("ms-id-cliff", std::vector<double>(40, 3200.0), 1.0).as_finite(),
    };
    sim::PlayerConfig config;
    for (const media::EncodedVideo& video : videos) {
      for (const net::ThroughputTrace& trace : traces) {
        for (const char* policy_spec : {"bba", "fugu"}) {
          auto make = [policy_spec] { return abr::make_policy(policy_spec); };
          auto player_policy = make();
          sim::SessionResult expected =
              sim::Player(config).stream(video, trace, *player_policy);
          auto sim_policy = make();
          sim::SessionSpec spec;
          spec.video = &video;
          spec.policy = sim_policy.get();
          auto got = sim::Simulator(config).run({spec}, trace, sim::LinkMode::kDedicated);
          ++identity_cells;
          identity_diffs += bench::sessions_differ(expected, got[0].session) ? 1 : 0;
        }
      }
    }
  }
  std::printf("identity: %zu single-session Simulator-vs-Player cells, %zu diffs\n\n",
              identity_cells, identity_diffs);

  // ---- 2. deterministic multi-session grid (CI diffs these rows) ----------
  struct GridRow {
    core::Experiments::MultiSessionCell cell;
    CellAggregate agg;
  };
  std::vector<GridRow> grid_rows;
  {
    std::vector<core::Experiments::MultiSessionCell> cells;
    const std::vector<size_t> trace_indexes =
        smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 7};
    const size_t grid_sessions = smoke ? 6 : 12;
    for (size_t trace_index : trace_indexes) {
      for (sim::LinkMode mode : {sim::LinkMode::kShared, sim::LinkMode::kDedicated}) {
        core::Experiments::MultiSessionCell cell;
        cell.trace_index = trace_index;
        cell.num_sessions = grid_sessions;
        cell.stagger_s = 5.0;
        cell.mode = mode;
        cells.push_back(cell);
      }
    }
    auto results = core::Experiments::run_multisession_grid(
        cells, core::Experiments::policy_factory("bba"), false, runner);
    for (size_t c = 0; c < cells.size(); ++c) {
      grid_rows.push_back({cells[c], aggregate(results[c])});
      const GridRow& row = grid_rows.back();
      std::printf("grid trace=%s mode=%s sessions=%zu stagger=%.1f outages=%zu chunks=%zu "
                  "mean_kbps=%.9g rebuffer_s=%.9g dl_checksum=%.9g\n",
                  core::Experiments::traces()[row.cell.trace_index].name().c_str(),
                  sim::to_string(row.cell.mode), row.agg.sessions, row.cell.stagger_s,
                  row.agg.outages, row.agg.chunks, row.agg.mean_bitrate_kbps,
                  row.agg.total_rebuffer_s, row.agg.dl_checksum_s);
    }
    std::printf("\n");
  }

  // ---- 3. scale: contention scenarios up to >= 1000 concurrent sessions ---
  struct ScenarioRow {
    std::string spec;     // the registry spec as given on the scenario
    std::string policy;   // canonical registry name
    std::string planner;  // planner key for the fugu family, "-" otherwise
    size_t sessions = 0;
    double stagger_s = 0.0;
    double wall_s = 0.0;
    CellAggregate agg;
    size_t peak_concurrent = 0;
    double sim_duration_s = 0.0;
    double mean_qoe = 0.0;
  };
  std::vector<ScenarioRow> scenario_rows;
  {
    media::Encoder encoder;
    std::vector<media::EncodedVideo> videos;
    const media::Genre genres[] = {media::Genre::kSports, media::Genre::kNature,
                                   media::Genre::kGaming, media::Genre::kAnimation};
    for (size_t i = 0; i < 4; ++i) {
      videos.push_back(encoder.encode(media::SourceVideo::generate(
          "MsScale" + std::to_string(i), genres[i], 120.0)));
    }
    std::vector<const media::EncodedVideo*> video_ptrs;
    for (const auto& v : videos) video_ptrs.push_back(&v);
    net::ThroughputTrace base = net::TraceGenerator::cellular("ms-bottleneck", 1700, 500.0, 77);

    struct ScenarioSpec {
      std::string spec;  // registry spec string
      size_t sessions;
    };
    // Fugu runs the same population once per planner mode (dp = exact
    // baseline, vi = discretized) so the JSON can pin the sessions/s
    // speedup and the QoE delta; whittle runs it too for whittle_compare.
    std::vector<ScenarioSpec> scenarios =
        smoke ? std::vector<ScenarioSpec>{{"bba", 50},
                                          {"bba", 200},
                                          {"fugu:planner=dp", 40},
                                          {"fugu:planner=vi", 40},
                                          {"whittle", 40}}
              : std::vector<ScenarioSpec>{{"bba", 100},
                                          {"fugu:planner=dp", 100},
                                          {"fugu:planner=vi", 100},
                                          {"whittle", 100},
                                          {"bba", 400},
                                          {"bba", 1000}};
    // Extra `--policy SPEC` scenarios append at the smoke fugu population
    // size so a one-off policy is comparable against the pinned rows.
    for (const std::string& spec : bench::policy_specs_arg(argc, argv)) {
      scenarios.push_back({spec, smoke ? size_t{40} : size_t{100}});
    }
    std::printf("scale: staggered arrivals on a shared bottleneck of N x 1700 Kbps "
                "(%zu thread(s) build the cells; the event loop itself is serial)\n",
                runner.num_threads());
    std::printf("%18s %8s %9s %10s %12s %12s %10s %8s\n", "policy", "planner", "sessions",
                "peak", "wall s", "sessions/s", "chunks/s", "outages");
    const abr::PolicyRegistry& registry = abr::PolicyRegistry::instance();
    for (const ScenarioSpec& scenario : scenarios) {
      // Canonicalize once per scenario: the display columns (name, planner
      // mode) come from the canonical form, construction from the registry.
      abr::PolicySpec canonical =
          registry.canonicalize(abr::PolicySpec::parse(scenario.spec));
      const std::string* planner_value = canonical.find("planner");
      // Bottleneck sized for a ~1700 Kbps per-viewer fair share, like a CDN
      // edge serving N concurrent players.
      net::ThroughputTrace bottleneck = base.scaled(
          static_cast<double>(scenario.sessions),
          "ms-bottleneck-x" + std::to_string(scenario.sessions));
      // All arrivals inside a 50 s window: shorter than any session lives,
      // so the whole population is genuinely concurrent at its peak.
      const double stagger_s = 50.0 / static_cast<double>(scenario.sessions);
      std::vector<std::unique_ptr<sim::AbrPolicy>> policies;
      std::vector<sim::AbrPolicy*> policy_ptrs;
      for (size_t k = 0; k < scenario.sessions; ++k) {
        policies.push_back(registry.make(canonical));
        policy_ptrs.push_back(policies.back().get());
      }
      auto specs = sim::StaggeredSpecs{video_ptrs, policy_ptrs, {}, scenario.sessions,
                                       stagger_s}
                       .build();
      double start = bench::now_s();
      auto results = sim::Simulator().run(specs, bottleneck, sim::LinkMode::kShared);
      double wall = bench::now_s() - start;

      ScenarioRow row;
      row.spec = scenario.spec;
      row.policy = canonical.name;
      row.planner = planner_value != nullptr ? *planner_value : "-";
      row.sessions = scenario.sessions;
      row.stagger_s = stagger_s;
      row.wall_s = wall;
      row.agg = aggregate(results);
      row.peak_concurrent = peak_concurrency(results);
      row.mean_qoe = mean_chunk_qoe(results);
      for (const sim::MultiSessionResult& r : results) {
        if (r.session.timeline() != nullptr) {
          row.sim_duration_s =
              std::max(row.sim_duration_s, r.start_s + r.session.timeline()->duration_s());
        }
      }
      scenario_rows.push_back(row);
      std::printf("%18s %8s %9zu %10zu %12.3f %12.1f %10.0f %8zu\n", row.policy.c_str(),
                  row.planner.c_str(), row.sessions, row.peak_concurrent, row.wall_s,
                  static_cast<double>(row.sessions) / row.wall_s,
                  static_cast<double>(row.agg.chunks) / row.wall_s, row.agg.outages);
    }
  }

  // ---- JSON ---------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"multisession\",\n");
  std::fprintf(f, "  \"schema_version\": 4,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"config\": {\"threads\": %zu, \"trace_integration\": \"%s\", "
               "\"backend\": \"%s\"},\n",
               runner.num_threads(),
               integration == net::TraceIntegration::kWalker ? "walker" : "indexed", backend);
  std::fprintf(f, "  \"identity\": {\"cells\": %zu, \"diffs\": %zu},\n", identity_cells,
               identity_diffs);
  std::fprintf(f, "  \"grid\": [\n");
  for (size_t i = 0; i < grid_rows.size(); ++i) {
    const GridRow& row = grid_rows[i];
    std::fprintf(f,
                 "    {\"trace\": \"%s\", \"mode\": \"%s\", \"sessions\": %zu, "
                 "\"stagger_s\": %.1f, \"outages\": %zu, \"chunks\": %zu, "
                 "\"mean_bitrate_kbps\": %.6f, \"total_rebuffer_s\": %.6f}%s\n",
                 core::Experiments::traces()[row.cell.trace_index].name().c_str(),
                 sim::to_string(row.cell.mode), row.agg.sessions, row.cell.stagger_s,
                 row.agg.outages, row.agg.chunks, row.agg.mean_bitrate_kbps,
                 row.agg.total_rebuffer_s, i + 1 < grid_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"scenarios\": [\n");
  size_t max_sessions = 0;
  double peak_rate = 0.0;
  for (size_t i = 0; i < scenario_rows.size(); ++i) {
    const ScenarioRow& row = scenario_rows[i];
    double rate = static_cast<double>(row.sessions) / row.wall_s;
    max_sessions = std::max(max_sessions, row.peak_concurrent);
    peak_rate = std::max(peak_rate, rate);
    std::fprintf(f,
                 "    {\"spec\": \"%s\", \"policy\": \"%s\", \"planner\": \"%s\", "
                 "\"sessions\": %zu, \"peak_concurrent\": %zu, "
                 "\"stagger_s\": %.6g, \"link\": \"shared\", \"wall_s\": %.4f, "
                 "\"sessions_per_s\": %.1f, \"chunks\": %zu, \"chunks_per_s\": %.0f, "
                 "\"outages\": %zu, \"sim_duration_s\": %.1f, \"mean_qoe\": %.6f}%s\n",
                 row.spec.c_str(), row.policy.c_str(), row.planner.c_str(), row.sessions,
                 row.peak_concurrent, row.stagger_s, row.wall_s, rate, row.agg.chunks,
                 static_cast<double>(row.agg.chunks) / row.wall_s, row.agg.outages,
                 row.sim_duration_s, row.mean_qoe, i + 1 < scenario_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Discretized-vs-exact comparison over the paired Fugu scenarios: the
  // speedup the vi planner buys at fleet scale, and what it costs in mean
  // per-chunk QoE against the bit-exact dp baseline.
  const ScenarioRow* dp_row = nullptr;
  const ScenarioRow* vi_row = nullptr;
  const ScenarioRow* whittle_row = nullptr;
  for (const ScenarioRow& row : scenario_rows) {
    if (row.policy == "whittle" && whittle_row == nullptr) whittle_row = &row;
    if (row.policy != "fugu") continue;
    if (row.planner == "dp" && dp_row == nullptr) dp_row = &row;
    if (row.planner == "vi" && vi_row == nullptr) vi_row = &row;
  }
  {
    if (dp_row != nullptr && vi_row != nullptr) {
      double dp_rate = static_cast<double>(dp_row->sessions) / dp_row->wall_s;
      double vi_rate = static_cast<double>(vi_row->sessions) / vi_row->wall_s;
      std::fprintf(f,
                   "  \"fugu_compare\": {\"sessions\": %zu, "
                   "\"fugu_dp_sessions_per_s\": %.1f, \"fugu_vi_sessions_per_s\": %.1f, "
                   "\"vi_speedup\": %.2f, \"dp_mean_qoe\": %.6f, \"vi_mean_qoe\": %.6f, "
                   "\"qoe_delta_vs_exact\": %.6f, \"vi_quantum_s\": %g},\n",
                   dp_row->sessions, dp_rate, vi_rate, vi_rate / dp_rate,
                   dp_row->mean_qoe, vi_row->mean_qoe,
                   vi_row->mean_qoe - dp_row->mean_qoe, abr::kDefaultViBufferQuantumS);
      std::printf("\nfugu_compare: dp %.1f sessions/s, vi %.1f sessions/s (%.1fx), "
                  "qoe delta vs exact %+.4f\n",
                  dp_rate, vi_rate, vi_rate / dp_rate,
                  vi_row->mean_qoe - dp_row->mean_qoe);
    } else {
      std::fprintf(f, "  \"fugu_compare\": null,\n");
    }
  }

  // The index-policy headline: Whittle's sessions/s against Fugu's exact
  // planner (the >= 10x claim) and its mean-QoE delta against the
  // fleet-scale Fugu-vi it displaces in the workload mix.
  {
    if (whittle_row != nullptr && dp_row != nullptr && vi_row != nullptr) {
      double whittle_rate =
          static_cast<double>(whittle_row->sessions) / whittle_row->wall_s;
      double dp_rate = static_cast<double>(dp_row->sessions) / dp_row->wall_s;
      std::fprintf(f,
                   "  \"whittle_compare\": {\"sessions\": %zu, "
                   "\"whittle_sessions_per_s\": %.1f, \"speedup_vs_fugu_dp\": %.2f, "
                   "\"whittle_mean_qoe\": %.6f, \"qoe_delta_vs_fugu_vi\": %.6f},\n",
                   whittle_row->sessions, whittle_rate, whittle_rate / dp_rate,
                   whittle_row->mean_qoe, whittle_row->mean_qoe - vi_row->mean_qoe);
      std::printf("whittle_compare: %.1f sessions/s (%.1fx fugu-dp), "
                  "qoe delta vs fugu-vi %+.4f\n",
                  whittle_rate, whittle_rate / dp_rate,
                  whittle_row->mean_qoe - vi_row->mean_qoe);
    } else {
      std::fprintf(f, "  \"whittle_compare\": null,\n");
    }
  }
  std::fprintf(f,
               "  \"summary\": {\"max_concurrent_sessions\": %zu, "
               "\"peak_sessions_per_s\": %.1f, \"identity_diffs\": %zu}\n",
               max_sessions, peak_rate, identity_diffs);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (identity_diffs > 0) {
    std::fprintf(stderr, "error: Simulator vs Player identity violated (%zu diffs)\n",
                 identity_diffs);
    return 1;
  }
  return 0;
}
