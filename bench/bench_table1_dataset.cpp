// Table 1: summary of the test video set (names, genres, lengths, source
// datasets), plus the synthesized per-video content statistics our substrate
// generates for each entry.
#include <cstdio>

#include "media/dataset.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sensei;

int main() {
  std::printf("%s", util::banner("Table 1: summary of the test video set").c_str());
  util::Table table({"name", "genre", "length", "source dataset", "chunks",
                     "sens mean", "sens sd", "key moments"});
  for (const auto& entry : media::Dataset::table1()) {
    media::SourceVideo video = media::Dataset::by_name(entry.name);
    auto s = video.true_sensitivity();
    int keys = 0;
    for (const auto& c : video.chunks()) {
      keys += c.kind == media::SceneKind::kKeyMoment ? 1 : 0;
    }
    table.add_row({entry.name, media::to_string(entry.genre), video.length_string(),
                   entry.source_dataset, std::to_string(video.num_chunks()),
                   util::Table::format_double(util::mean(s), 2),
                   util::Table::format_double(util::stddev(s), 2), std::to_string(keys)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("descriptions (Figure 19):\n");
  for (const auto& entry : media::Dataset::table1()) {
    std::printf("  %-13s %s\n", entry.name.c_str(), entry.description.c_str());
  }
  return 0;
}
