// Figure 4: QoE vs incident position for three incident types on the
// Soccer1 clip. The paper's observation: absolute QoE depends on the
// incident, the *ranking over positions* does not.
#include <cstdio>

#include "bench_util.h"
#include "media/dataset.h"
#include "util/stats.h"

using namespace sensei;

int main() {
  media::SourceVideo clip = media::Dataset::soccer1_clip();
  media::EncodedVideo video = media::Encoder().encode(clip);
  crowd::GroundTruthQoE oracle;

  auto rebuf1 = sim::rebuffer_series(video, 1.0);
  auto rebuf4 = sim::rebuffer_series(video, 4.0);
  auto drop = sim::bitrate_drop_series(video, 0, 1);

  auto mos1 = bench::crowdsourced_mos(oracle, video, rebuf1, 24, 41);
  auto mos4 = bench::crowdsourced_mos(oracle, video, rebuf4, 24, 42);
  auto mosd = bench::crowdsourced_mos(oracle, video, drop, 24, 43);

  std::printf("%s", util::banner("Figure 4: QoE vs incident position (Soccer1 clip)")
                        .c_str());
  util::Table table(
      {"position (s)", "(a) 1-s rebuffering", "(b) 4-s rebuffering", "(c) bitrate drop"});
  for (size_t i = 0; i < mos1.size(); ++i) {
    table.add_row(std::vector<double>{static_cast<double>(i) * 4.0, mos1[i], mos4[i],
                                      mosd[i]},
                  2);
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("4-s rebuffering is uniformly worse than 1-s: %s\n",
              util::mean(mos4) < util::mean(mos1) ? "yes" : "NO");
  std::printf("rank correlation (1-s vs 4-s rebuffering):  SRCC=%.2f\n",
              util::spearman(mos1, mos4));
  std::printf("rank correlation (1-s rebuf vs bitrate drop): SRCC=%.2f\n",
              util::spearman(mos1, mosd));
  std::printf("(paper: the ranking over positions is identical across incidents)\n");
  return 0;
}
