// §7.4 systems overhead: SENSEI's runtime cost relative to a vanilla player.
// The paper reports <1% CPU/RAM overhead in DASH.js; here we measure the
// per-decision latency of each ABR, manifest parse time with and without the
// SenseiWeights extension, the weight-inference solver, and full-session
// simulation throughput.
#include <benchmark/benchmark.h>

#include "abr/bba.h"
#include "abr/fugu.h"
#include "abr/pensieve.h"
#include "crowd/ground_truth.h"
#include "crowd/weights.h"
#include "media/dataset.h"
#include "net/trace_gen.h"
#include "sim/manifest.h"
#include "sim/player.h"

using namespace sensei;

namespace {

const media::EncodedVideo& bench_video() {
  static const media::EncodedVideo kVideo =
      media::Encoder().encode(media::Dataset::by_name("Soccer1"));
  return kVideo;
}

const net::ThroughputTrace& bench_trace() {
  static const net::ThroughputTrace kTrace =
      net::TraceGenerator::cellular("bench", 1500, 700.0, 9);
  return kTrace;
}

sim::AbrObservation mid_session_observation() {
  sim::AbrObservation obs;
  obs.video = &bench_video();
  obs.next_chunk = 20;
  obs.num_chunks = bench_video().num_chunks();
  obs.buffer_s = 12.0;
  obs.last_level = 2;
  obs.last_throughput_kbps = 1600.0;
  obs.throughput_history_kbps = {1500, 1650, 1400, 1700, 1580, 1620, 1490, 1550};
  obs.future_weights = {1.2, 0.8, 1.5, 0.9, 1.0};
  return obs;
}

void BM_DecisionBba(benchmark::State& state) {
  abr::BbaAbr policy;
  auto obs = mid_session_observation();
  for (auto _ : state) benchmark::DoNotOptimize(policy.decide(obs));
}
BENCHMARK(BM_DecisionBba);

void BM_DecisionFugu(benchmark::State& state) {
  abr::FuguAbr policy;
  auto obs = mid_session_observation();
  for (auto _ : state) benchmark::DoNotOptimize(policy.decide(obs));
}
BENCHMARK(BM_DecisionFugu);

void BM_DecisionSenseiFugu(benchmark::State& state) {
  abr::FuguConfig cfg;
  cfg.use_weights = true;
  cfg.rebuffer_options = {0.0, 1.0, 2.0};
  abr::FuguAbr policy(cfg);
  auto obs = mid_session_observation();
  for (auto _ : state) benchmark::DoNotOptimize(policy.decide(obs));
}
BENCHMARK(BM_DecisionSenseiFugu);

void BM_DecisionPensieve(benchmark::State& state) {
  abr::PensieveAbr policy{abr::PensieveConfig{}, 3};
  auto obs = mid_session_observation();
  for (auto _ : state) benchmark::DoNotOptimize(policy.decide(obs));
}
BENCHMARK(BM_DecisionPensieve);

void BM_DecisionSenseiPensieve(benchmark::State& state) {
  abr::PensieveConfig cfg;
  cfg.sensei_mode = true;
  abr::PensieveAbr policy{cfg, 3};
  auto obs = mid_session_observation();
  for (auto _ : state) benchmark::DoNotOptimize(policy.decide(obs));
}
BENCHMARK(BM_DecisionSenseiPensieve);

void BM_FullSessionSimulation(benchmark::State& state) {
  abr::FuguAbr policy;
  sim::Player player;
  for (auto _ : state) {
    benchmark::DoNotOptimize(player.stream(bench_video(), bench_trace(), policy));
  }
}
BENCHMARK(BM_FullSessionSimulation);

void BM_ManifestParsePlain(benchmark::State& state) {
  sim::Manifest m;
  m.video_name = "Soccer1";
  m.num_chunks = 50;
  m.bitrates_kbps = {300, 750, 1200, 1850, 2850};
  std::string xml = m.to_xml();
  for (auto _ : state) benchmark::DoNotOptimize(sim::Manifest::from_xml(xml));
}
BENCHMARK(BM_ManifestParsePlain);

void BM_ManifestParseWithWeights(benchmark::State& state) {
  sim::Manifest m;
  m.video_name = "Soccer1";
  m.num_chunks = 50;
  m.bitrates_kbps = {300, 750, 1200, 1850, 2850};
  m.weights.assign(50, 1.0);
  std::string xml = m.to_xml();
  for (auto _ : state) benchmark::DoNotOptimize(sim::Manifest::from_xml(xml));
}
BENCHMARK(BM_ManifestParseWithWeights);

void BM_WeightInference(benchmark::State& state) {
  crowd::GroundTruthQoE oracle;
  auto series = sim::rebuffer_series(bench_video(), 1.0);
  auto reference = sim::RenderedVideo::pristine(bench_video());
  std::vector<double> mos;
  for (const auto& v : series) mos.push_back(oracle.score(v));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crowd::infer_weights(series, mos, reference, 0.9,
                                                  bench_video().num_chunks()));
  }
}
BENCHMARK(BM_WeightInference);

void BM_OracleScore(benchmark::State& state) {
  crowd::GroundTruthQoE oracle;
  auto rendered = sim::RenderedVideo::pristine(bench_video());
  for (auto _ : state) benchmark::DoNotOptimize(oracle.score(rendered));
}
BENCHMARK(BM_OracleScore);

}  // namespace

BENCHMARK_MAIN();
