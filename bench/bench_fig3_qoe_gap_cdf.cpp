// Figure 3: CDF of the max-min QoE gap when a low-quality incident (1-s
// rebuffering, 4-s rebuffering, or a 4-s bitrate drop) is injected at
// different positions in the same video — whole-video and 12-second-window
// variants. Paper: 21 of 48 series exceed a 40% gap.
#include <cstdio>

#include "bench_util.h"
#include "media/dataset.h"
#include "util/stats.h"

using namespace sensei;

namespace {

// Builds the three §2.3 incident series for one video.
std::vector<std::vector<sim::RenderedVideo>> build_series(const media::EncodedVideo& video) {
  return {
      sim::rebuffer_series(video, 1.0),
      sim::rebuffer_series(video, 4.0),
      sim::bitrate_drop_series(video, 0, 1),  // 300 Kbps for one 4-s chunk
  };
}

double relative_gap(const std::vector<double>& qoe) {
  double lo = util::min_of(qoe), hi = util::max_of(qoe);
  return lo > 0 ? (hi - lo) / lo * 100.0 : 0.0;
}

}  // namespace

int main() {
  crowd::GroundTruthQoE oracle;
  media::Encoder encoder;
  std::vector<double> whole_video_gaps;
  std::vector<double> window_gaps;
  int over40 = 0, total = 0;
  uint64_t seed = 100;

  for (const auto& source : media::Dataset::test_set()) {
    media::EncodedVideo video = encoder.encode(source);
    for (auto& series : build_series(video)) {
      auto mos = bench::crowdsourced_mos(oracle, video, series, 12, seed++);
      double gap = relative_gap(mos);
      whole_video_gaps.push_back(gap);
      ++total;
      if (gap > 40.0) ++over40;

      // 12-second-window variant: gaps among positions within each window of
      // 3 chunks, stepped at 4-second boundaries.
      for (size_t start = 0; start + 3 <= mos.size(); start += 1) {
        std::vector<double> window(mos.begin() + static_cast<long>(start),
                                   mos.begin() + static_cast<long>(start + 3));
        window_gaps.push_back(relative_gap(window));
      }
    }
  }

  bench::print_cdf("Figure 3: max-min QoE gap CDF, whole video (48 series)",
                   whole_video_gaps);
  bench::print_cdf("Figure 3: max-min QoE gap CDF, 12-second windows", window_gaps);
  std::printf("series with gap > 40%%: %d of %d (paper: 21 of 48)\n", over40, total);
  std::printf("mean whole-video gap: %.1f%% (paper: ~42%% average, up to 121%%)\n",
              util::mean(whole_video_gaps));
  return 0;
}
