// Figure 2: QoE prediction error (x-axis) and fraction of discordant ABR
// pairs (y-axis) for the baseline QoE models vs SENSEI.
//
// Reproduces §2.2's protocol: 16 videos x 7 traces x 3 ABR algorithms =
// 336 rendered sessions, ground-truth MOS crowdsourced per rendering, models
// trained on one split and evaluated on the other.
#include <cstdio>

#include "abr/bba.h"
#include "bench_util.h"
#include "core/experiments.h"
#include "qoe/ksqi.h"
#include "qoe/lstm_qoe.h"
#include "qoe/metrics.h"
#include "qoe/p1203.h"
#include "qoe/sensei_qoe.h"
#include "util/stats.h"

using namespace sensei;
using core::Experiments;

int main() {
  const auto& videos = Experiments::videos();
  const auto& oracle = Experiments::oracle();
  const auto& weights = Experiments::weights();
  auto traces = net::TraceGenerator::motivation_set();

  // --- Render 336 sessions (16 videos x 7 traces x 3 ABRs). ---
  abr::BbaAbr bba;
  auto fugu = core::Sensei::make_fugu();
  auto& pensieve = Experiments::pensieve();
  std::vector<sim::AbrPolicy*> abrs = {&bba, fugu.get(), &pensieve};

  struct Cell {
    size_t video;
    std::vector<sim::RenderedVideo> renderings;  // one per ABR
    std::vector<double> mos;
  };
  std::vector<Cell> cells;
  sim::Player player;
  crowd::RaterPool raters(crowd::RaterConfig(), 77);
  for (size_t v = 0; v < videos.size(); ++v) {
    for (const auto& trace : traces) {
      Cell cell;
      cell.video = v;
      for (auto* abr : abrs) {
        auto session = player.stream(videos[v], trace, *abr);
        cell.renderings.push_back(session.to_rendered(videos[v]));
      }
      // Ground-truth MOS: mean of 30 simulated ratings per rendering.
      for (const auto& r : cell.renderings) {
        double truth = oracle.score(r);
        double stars = 0.0;
        for (int k = 0; k < 30; ++k) {
          auto rater = raters.recruit();
          stars += raters.rate(rater, truth).stars;
        }
        cell.mos.push_back(crowd::RaterPool::stars_to_unit(stars / 30.0));
      }
      cells.push_back(std::move(cell));
    }
  }

  // --- Train/test split over flattened renderings (paper: 315/21). ---
  std::vector<sim::RenderedVideo> all_videos;
  std::vector<double> all_mos;
  std::vector<std::vector<double>> all_weights;
  for (const auto& cell : cells) {
    for (size_t a = 0; a < cell.renderings.size(); ++a) {
      all_videos.push_back(cell.renderings[a]);
      all_mos.push_back(cell.mos[a]);
      all_weights.push_back(weights[cell.video]);
    }
  }
  const size_t n = all_videos.size();
  const size_t test_start = n - n / 16;  // hold out ~6% as in the paper (21/336)
  std::vector<sim::RenderedVideo> train(all_videos.begin(),
                                        all_videos.begin() + static_cast<long>(test_start));
  std::vector<double> train_mos(all_mos.begin(),
                                all_mos.begin() + static_cast<long>(test_start));
  std::vector<sim::RenderedVideo> test(all_videos.begin() + static_cast<long>(test_start),
                                       all_videos.end());
  std::vector<double> test_mos(all_mos.begin() + static_cast<long>(test_start),
                               all_mos.end());

  // --- Models. SENSEI uses each test rendering's own per-video weights. ---
  qoe::KsqiModel ksqi;
  qoe::P1203Model p1203;
  qoe::LstmQoeModel lstm(12, 30, 0.01, 26);
  ksqi.train(train, train_mos);
  p1203.train(train, train_mos);
  lstm.train(train, train_mos);

  auto sensei_predict = [&](const sim::RenderedVideo& v, size_t flat_index) {
    qoe::SenseiQoeModel model(all_weights[flat_index]);
    model.train(train, train_mos);  // affine calibration shared across videos
    return model.predict(v);
  };

  struct Row {
    std::string name;
    std::vector<double> pred_test;
    std::vector<std::vector<double>> pred_cells;  // per cell, per ABR
  };
  std::vector<Row> rows(4);
  rows[0].name = "SENSEI";
  rows[1].name = "KSQI";
  rows[2].name = "LSTM-QoE";
  rows[3].name = "P.1203";

  for (size_t i = test_start; i < n; ++i) {
    rows[0].pred_test.push_back(sensei_predict(all_videos[i], i));
    rows[1].pred_test.push_back(ksqi.predict(all_videos[i]));
    rows[2].pred_test.push_back(lstm.predict(all_videos[i]));
    rows[3].pred_test.push_back(p1203.predict(all_videos[i]));
  }
  // Discordant ABR pairs evaluated over all cells.
  std::vector<std::vector<qoe::AbrRankingCell>> ranking(4);
  for (size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    qoe::AbrRankingCell rc_sensei, rc_ksqi, rc_lstm, rc_p1203;
    for (size_t a = 0; a < cell.renderings.size(); ++a) {
      size_t flat = c * 3 + a;
      rc_sensei.true_qoe.push_back(cell.mos[a]);
      rc_ksqi.true_qoe.push_back(cell.mos[a]);
      rc_lstm.true_qoe.push_back(cell.mos[a]);
      rc_p1203.true_qoe.push_back(cell.mos[a]);
      rc_sensei.predicted_qoe.push_back(sensei_predict(cell.renderings[a], flat));
      rc_ksqi.predicted_qoe.push_back(ksqi.predict(cell.renderings[a]));
      rc_lstm.predicted_qoe.push_back(lstm.predict(cell.renderings[a]));
      rc_p1203.predicted_qoe.push_back(p1203.predict(cell.renderings[a]));
    }
    ranking[0].push_back(rc_sensei);
    ranking[1].push_back(rc_ksqi);
    ranking[2].push_back(rc_lstm);
    ranking[3].push_back(rc_p1203);
  }

  std::printf("%s", util::banner(
                        "Figure 2: QoE prediction error vs discordant ABR pairs "
                        "(336 rendered sessions)")
                        .c_str());
  util::Table table({"model", "relative error %", "discordant pairs %"});
  for (size_t m = 0; m < rows.size(); ++m) {
    double err = util::mean_relative_error(rows[m].pred_test, test_mos) * 100.0;
    double disc = qoe::discordant_pair_fraction(ranking[m]) * 100.0;
    table.add_row({rows[m].name, util::Table::format_double(err, 1),
                   util::Table::format_double(disc, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\n(paper: SENSEI sits closest to the origin; even the best baseline has "
      ">10%% error and >10%% discordant pairs)\n");
  return 0;
}
