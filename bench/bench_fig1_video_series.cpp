// Figure 1: MOS of Soccer1 renderings with a 1-second rebuffering event at
// different positions. The paper reports a >40% gap between the best and
// worst positions, with the minimum at the goal.
#include <cstdio>

#include "bench_util.h"
#include "media/dataset.h"
#include "util/stats.h"

using namespace sensei;

int main() {
  media::SourceVideo clip = media::Dataset::soccer1_clip();
  media::EncodedVideo video = media::Encoder().encode(clip);
  crowd::GroundTruthQoE oracle;

  auto series = sim::rebuffer_series(video, 1.0);
  // >30 ratings per rendering, as in §2.2's ground-truth protocol.
  auto mos = bench::crowdsourced_mos(oracle, video, series, 32, 1);

  std::printf("%s", util::banner(
                        "Figure 1: QoE (MOS) vs position of a 1-second rebuffering "
                        "(Soccer1 clip)")
                        .c_str());
  util::Table table({"rebuffer at (s)", "scene", "MOS", "true sensitivity"});
  for (size_t i = 0; i < series.size(); ++i) {
    table.add_row({util::Table::format_double(static_cast<double>(i) * 4.0, 0),
                   media::to_string(clip.chunk(i).kind),
                   util::Table::format_double(mos[i], 2),
                   util::Table::format_double(clip.chunk(i).sensitivity, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  double qmax = util::max_of(mos), qmin = util::min_of(mos);
  size_t worst = 0;
  for (size_t i = 0; i < mos.size(); ++i) {
    if (mos[i] == qmin) worst = i;
  }
  std::printf("max-min MOS gap: %.1f%% (paper: >40%% for this clip)\n",
              (qmax - qmin) / qmin * 100.0);
  std::printf("lowest MOS at chunk %zu (%s) — paper: during the goal\n", worst,
              media::to_string(clip.chunk(worst).kind).c_str());
  return 0;
}
