// Figure 15: QoE prediction accuracy (PLCC/SRCC + scatter summary) of
// SENSEI's QoE model vs KSQI, LSTM-QoE and P.1203 on randomized renderings.
// Paper: SENSEI PLCC 0.85 / SRCC 0.84; baselines at or below 0.76 / 0.73.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "qoe/ksqi.h"
#include "qoe/lstm_qoe.h"
#include "qoe/metrics.h"
#include "qoe/p1203.h"
#include "qoe/sensei_qoe.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace sensei;
using core::Experiments;

int main() {
  const auto& videos = Experiments::videos();
  const auto& oracle = Experiments::oracle();
  const auto& weights = Experiments::weights();

  // §7.3 protocol: per rendering, random bitrate per chunk plus a random
  // startup stall; 640 renderings split 400 train / 240 test.
  util::Rng rng(1503);
  std::vector<sim::RenderedVideo> renderings;
  std::vector<double> mos;
  std::vector<size_t> video_of;
  crowd::RaterPool raters(crowd::RaterConfig(), 88);
  const size_t total = 640;
  for (size_t i = 0; i < total; ++i) {
    size_t v = static_cast<size_t>(rng.uniform_int(0, static_cast<int>(videos.size()) - 1));
    const auto& video = videos[v];
    std::vector<sim::RenderedChunk> chunks;
    for (size_t c = 0; c < video.num_chunks(); ++c) {
      size_t level = static_cast<size_t>(rng.uniform_int(0, 4));
      const auto& rep = video.rep(c, level);
      double stall = rng.chance(0.06) ? rng.uniform(0.5, 3.0) : 0.0;
      chunks.push_back({level, rep.bitrate_kbps, rep.visual_quality, stall});
    }
    sim::RenderedVideo rendered("rand-" + std::to_string(i), video.chunk_duration_s(),
                                std::move(chunks), video.source().chunks(),
                                rng.uniform_int(0, 2));
    double truth = oracle.score(rendered);
    double stars = 0.0;
    for (int k = 0; k < 12; ++k) {
      auto rater = raters.recruit();
      stars += raters.rate(rater, truth).stars;
    }
    renderings.push_back(std::move(rendered));
    mos.push_back(crowd::RaterPool::stars_to_unit(stars / 12.0));
    video_of.push_back(v);
  }

  const size_t train_n = 400;
  std::vector<sim::RenderedVideo> train(renderings.begin(),
                                        renderings.begin() + train_n);
  std::vector<double> train_mos(mos.begin(), mos.begin() + train_n);

  qoe::KsqiModel ksqi;
  qoe::P1203Model p1203;
  qoe::LstmQoeModel lstm(12, 30, 0.01, 27);
  ksqi.train(train, train_mos);
  p1203.train(train, train_mos);
  lstm.train(train, train_mos);

  std::vector<double> pred_sensei, pred_ksqi, pred_lstm, pred_p1203, truth;
  for (size_t i = train_n; i < total; ++i) {
    qoe::SenseiQoeModel sensei(weights[video_of[i]]);
    sensei.train(train, train_mos);
    pred_sensei.push_back(sensei.predict(renderings[i]));
    pred_ksqi.push_back(ksqi.predict(renderings[i]));
    pred_lstm.push_back(lstm.predict(renderings[i]));
    pred_p1203.push_back(p1203.predict(renderings[i]));
    truth.push_back(mos[i]);
  }

  std::printf("%s", util::banner(
                        "Figure 15: QoE prediction accuracy on 240 held-out renderings")
                        .c_str());
  util::Table table({"model", "PLCC", "SRCC", "RMSE"});
  auto add = [&](const char* name, const std::vector<double>& pred) {
    table.add_row({name, util::Table::format_double(util::pearson(pred, truth), 2),
                   util::Table::format_double(util::spearman(pred, truth), 2),
                   util::Table::format_double(util::rmse(pred, truth), 3)});
  };
  add("(a) SENSEI", pred_sensei);
  add("(b) KSQI", pred_ksqi);
  add("(c) LSTM-QoE", pred_lstm);
  add("(d) P.1203", pred_p1203);
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(paper: SENSEI 0.85/0.84; KSQI 0.76/0.73; LSTM-QoE 0.60/0.63; "
              "P.1203 0.62/0.67)\n");
  return 0;
}
