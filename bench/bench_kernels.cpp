// Kernel-layer microbench: per-primitive ns/element for the scalar reference
// vs the resolved SIMD backend (util/kernels), plus the speedup ratio. Emits
// machine-readable BENCH_kernels.json (schema in bench/README.md).
//
//   ./bench_kernels                    full sweep (~10 s)
//   ./bench_kernels --smoke            reduced sweep for CI (~1 s)
//   ./bench_kernels --out FILE         JSON destination
//   ./bench_kernels --baseline FILE    validate a pinned JSON's schema
//   ./bench_kernels --backend scalar|simd|auto
//
// Every timed pair is also an identity gate: the scalar and SIMD outputs of
// each primitive are memcmp'd per run, and any byte difference fails the
// process — the speedup table is only meaningful if the backends agree
// bit for bit. Rows use the consumers' shapes: the ladder-width rows (L=10)
// are what Whittle and the planner per-level sweeps issue, the long rows
// (N=4096) expose the asymptotic per-element cost.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "util/kernels.h"

using namespace sensei;
using util::KernelBackend;
namespace k = sensei::util::kernels;

namespace {

// One timed primitive: fills outputs under the scalar backend, re-runs under
// the SIMD backend, memcmps, and reports ns/element for both.
struct RowResult {
  std::string name;
  size_t n = 0;
  double scalar_ns = 0.0;  // per element
  double simd_ns = 0.0;    // per element
  size_t diffs = 0;
};

double time_ns_per_elem(const std::function<void()>& fn, size_t n, size_t iters) {
  fn();  // warm the caches and the lazily resolved dispatch table
  const double start = bench::now_s();
  for (size_t i = 0; i < iters; ++i) fn();
  const double wall = bench::now_s() - start;
  return wall * 1e9 / (static_cast<double>(iters) * static_cast<double>(n));
}

class KernelBench {
 public:
  KernelBench(size_t iters, bool simd_available)
      : iters_(iters), simd_available_(simd_available) {}

  // Times `fn` under both backends; `out` spans the bytes the primitive
  // writes, compared between the two runs.
  void row(const std::string& name, size_t n, const double* out, size_t out_count,
           const std::function<void()>& fn) {
    RowResult r;
    r.name = name;
    r.n = n;
    util::set_kernel_backend(KernelBackend::kScalar);
    r.scalar_ns = time_ns_per_elem(fn, n, iters_);
    std::vector<double> scalar_out(out, out + out_count);
    if (simd_available_) {
      util::set_kernel_backend(KernelBackend::kSimd);
      r.simd_ns = time_ns_per_elem(fn, n, iters_);
      if (std::memcmp(scalar_out.data(), out, out_count * sizeof(double)) != 0) {
        for (size_t i = 0; i < out_count; ++i) {
          uint64_t a, b;
          std::memcpy(&a, &scalar_out[i], 8);
          std::memcpy(&b, &out[i], 8);
          if (a != b) ++r.diffs;
        }
      }
      util::set_kernel_backend(KernelBackend::kAuto);
    }
    total_diffs_ += r.diffs;
    rows_.push_back(r);
    const double speedup = r.simd_ns > 0.0 ? r.scalar_ns / r.simd_ns : 0.0;
    std::printf("%-28s %6zu %12.3f %12.3f %9.2fx %6zu\n", name.c_str(), n, r.scalar_ns,
                r.simd_ns, speedup, r.diffs);
  }

  const std::vector<RowResult>& rows() const { return rows_; }
  size_t total_diffs() const { return total_diffs_; }

 private:
  size_t iters_;
  bool simd_available_;
  std::vector<RowResult> rows_;
  size_t total_diffs_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::check_flags(argc, argv, {"--out", "--baseline", "--backend"}, {"--smoke"},
                     "bench_kernels [--smoke] [--out FILE] [--baseline FILE] "
                     "[--backend scalar|simd|auto]");
  const bool smoke = bench::smoke_arg(argc, argv);
  const std::string out_path = bench::out_arg(argc, argv, "BENCH_kernels.json");
  const std::string baseline_path = bench::baseline_arg(argc, argv);
  if (!baseline_path.empty()) {
    bench::check_baseline_fields(baseline_path, 1,
                                 {"\"kernels\"", "\"scalar_ns_per_elem\"",
                                  "\"simd_ns_per_elem\"", "\"speedup\"", "\"backend\"",
                                  "\"identity_diffs\""});
  }
  const char* requested_backend = bench::backend_arg(argc, argv);
  (void)requested_backend;  // rows always time scalar-vs-simd explicitly

  const bool simd = util::kernel_simd_supported();
  util::set_kernel_backend(KernelBackend::kSimd);
  const std::string simd_name = util::kernel_backend_name();
  util::set_kernel_backend(KernelBackend::kAuto);
  std::printf("kernels: simd compiled=%d supported=%d resolved=%s\n\n",
              util::kernel_simd_compiled() ? 1 : 0, simd ? 1 : 0, simd_name.c_str());

  const size_t iters = smoke ? 2000 : 40000;
  KernelBench bench_runner(iters, simd);

  // Inputs shaped like the consumers': positive finite throughputs/sizes,
  // buffer levels in the player's range. Seeded, so rows are reproducible.
  std::mt19937_64 rng(99);
  auto uniform = [&](double lo, double hi) {
    return lo + (hi - lo) * std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  };
  const size_t kLadder = 10;   // ladder-width rows (Whittle / per-level sweeps)
  const size_t kLong = 4096;   // asymptotic per-element cost
  std::vector<double> in_a(kLong), in_b(kLong), in_c(kLong), out_a(kLong), out_b(kLong);
  std::vector<uint64_t> out_u(kLong);
  for (size_t i = 0; i < kLong; ++i) {
    in_a[i] = uniform(100.0, 8000.0);   // kbps / sizes
    in_b[i] = uniform(0.0, 30.0);       // buffers / download times
    in_c[i] = uniform(0.0, 5.0);        // visual qualities
  }

  std::printf("%-28s %6s %12s %12s %10s %6s\n", "kernel", "n", "scalar ns/el",
              "simd ns/el", "speedup", "diffs");
  for (size_t n : {kLadder, kLong}) {
    const std::string suffix = "/" + std::to_string(n);
    bench_runner.row("div_add_row" + suffix, n, out_a.data(), n, [&] {
      k::div_add_row(38000.0, in_a.data(), n, 1.0, 0.08, out_a.data());
    });
    bench_runner.row("mul_div_row" + suffix, n, out_a.data(), n, [&] {
      k::mul_div_row(in_a.data(), n, 8.0, 2400.0, out_a.data());
    });
    bench_runner.row("step_buffer_stall_row" + suffix, n, out_a.data(), n, [&] {
      k::step_buffer_stall_row(7.5, in_b.data(), n, 0.0, 2.0, 30.0, out_a.data(),
                               out_b.data());
    });
    bench_runner.row("chunk_quality_row" + suffix, n, out_a.data(), n, [&] {
      k::chunk_quality_row(in_c.data(), in_b.data(), in_c.data(), n, 8.0, 8.0, 1.0,
                           -10.0, out_a.data());
    });
    bench_runner.row("chunk_quality_stall_row" + suffix, n, out_a.data(), n, [&] {
      k::chunk_quality_stall_row(3.5, 3.1, 3.2, in_b.data(), n, 8.0, 8.0, 1.0, -10.0,
                                 out_a.data());
    });
    bench_runner.row("whittle_index_row" + suffix, n, out_a.data(), n, [&] {
      k::whittle_index_row(in_a.data(), in_c.data(), in_c.data(), n, 2.4e6, 6.5, 0.5,
                           0.5, 8.0, 8.0, 1.0, out_a.data());
    });
    bench_runner.row("quantize_kbps_row" + suffix, n, out_a.data(), n, [&] {
      k::quantize_kbps_row(in_a.data(), n, 0.5, out_a.data());
    });
    bench_runner.row("buffer_bucket_row" + suffix, n,
                     reinterpret_cast<const double*>(out_u.data()), n, [&] {
                       k::buffer_bucket_row(in_b.data(), n, 2.0, out_u.data());
                     });
    bench_runner.row("triangular_fan" + suffix, n, out_a.data(), n, [&] {
      k::triangular_fan(n, 3100.0, 0.4, 30.0, out_a.data(), out_b.data());
    });
  }
  // The order-pinned reductions share one implementation across backends;
  // timed for the record, identity trivially holds.
  double sink = 0.0;
  bench_runner.row("sum_row/4096", kLong, &sink, 1,
                   [&] { sink = k::sum_row(in_a.data(), kLong); });
  bench_runner.row("weighted_sum_row/4096", kLong, &sink, 1,
                   [&] { sink = k::weighted_sum_row(in_b.data(), in_a.data(), kLong); });

  // ---- JSON ---------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"config\": {\"backend\": \"%s\", \"simd_compiled\": %s, \"iters\": %zu},\n",
               simd_name.c_str(), util::kernel_simd_compiled() ? "true" : "false", iters);
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < bench_runner.rows().size(); ++i) {
    const RowResult& r = bench_runner.rows()[i];
    const double speedup = r.simd_ns > 0.0 ? r.scalar_ns / r.simd_ns : 0.0;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n\": %zu, \"scalar_ns_per_elem\": %.4f, "
                 "\"simd_ns_per_elem\": %.4f, \"speedup\": %.3f, \"diffs\": %zu}%s\n",
                 r.name.c_str(), r.n, r.scalar_ns, r.simd_ns, speedup, r.diffs,
                 i + 1 < bench_runner.rows().size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"summary\": {\"identity_diffs\": %zu}\n", bench_runner.total_diffs());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (bench_runner.total_diffs() > 0) {
    std::fprintf(stderr, "error: scalar vs %s identity violated (%zu lanes differ)\n",
                 simd_name.c_str(), bench_runner.total_diffs());
    return 1;
  }
  return 0;
}
