// Planner microbench: DP vs exhaustive vs discretized-VI MPC lookahead,
// swept over the horizon. Emits machine-readable BENCH_planner.json (see
// bench/README.md for the schema) so perf regressions in the system's
// hottest path are caught by comparing runs.
//
//   ./bench_planner                 full sweep (horizons 1..7), ~30 s
//   ./bench_planner --smoke         reduced sweep for CI (~2 s)
//   ./bench_planner --out FILE      JSON destination (default BENCH_planner.json)
//   ./bench_planner --quantum S     DP state-merging quantum (default 0 = exact)
//   ./bench_planner --baseline FILE validate a pinned JSON's schema
//
// The workload mirrors SENSEI-Fugu's production configuration: the default
// 5-level ladder, 8 throughput scenarios, scheduled-rebuffer options
// {0,1,2} s, sensitivity weights on. DP decisions are cross-checked against
// the exhaustive reference while timing; any mismatch at quantum 0 fails
// the process. The vi planner is lossy by design: its decision divergence
// is counted and reported, never fatal.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "abr/planner.h"
#include "bench_util.h"
#include "media/dataset.h"
#include "util/rng.h"

using namespace sensei;

namespace {

struct ObsCase {
  sim::AbrObservation obs;
  std::vector<net::ThroughputScenario> scenarios;
};

// Seeded observation set: buffers, positions, levels, and sensitivity
// weights spread across their realistic ranges.
std::vector<ObsCase> make_cases(const media::EncodedVideo& video, size_t count,
                                size_t num_scenarios, size_t max_horizon, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ObsCase> cases(count);
  for (auto& c : cases) {
    c.obs.video = &video;
    c.obs.num_chunks = video.num_chunks();
    c.obs.next_chunk = static_cast<size_t>(rng.uniform_int(
        0, static_cast<int>(video.num_chunks() - max_horizon - 1)));
    c.obs.buffer_s = rng.uniform(0.0, 28.0);
    c.obs.last_level = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int>(video.ladder().level_count()) - 1));
    for (size_t d = 0; d < max_horizon; ++d)
      c.obs.future_weights.push_back(rng.uniform(0.5, 2.8));
    double center = rng.uniform(300.0, 6000.0);
    double cv = rng.uniform(0.05, 0.8);
    c.scenarios = net::triangular_scenarios(num_scenarios, center, cv);
  }
  return cases;
}

abr::PlanQuery make_query(const ObsCase& c, size_t horizon, const std::vector<double>& rebuf) {
  abr::PlanQuery q;
  q.obs = &c.obs;
  q.scenarios = c.scenarios.data();
  q.num_scenarios = c.scenarios.size();
  q.horizon = horizon;
  q.rebuffer_options = rebuf.data();
  q.num_rebuffer_options = rebuf.size();
  q.use_weights = true;
  q.weight_shrinkage = 0.8;
  q.prev_visual_quality =
      c.obs.next_chunk > 0
          ? c.obs.video->visual_quality(c.obs.next_chunk - 1, c.obs.last_level)
          : c.obs.video->visual_quality(0, 0);
  return q;
}

double time_plans_ns(abr::Planner& planner, const std::vector<abr::PlanQuery>& queries,
                     size_t reps, uint64_t* checksum) {
  auto start = std::chrono::steady_clock::now();
  uint64_t sum = 0;
  for (size_t r = 0; r < reps; ++r) {
    for (const auto& q : queries) {
      abr::PlanResult res = planner.plan(q);
      sum += res.best_level * 4 + static_cast<uint64_t>(res.best_rebuffer_s);
    }
  }
  double total_ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  *checksum += sum;
  return total_ns / static_cast<double>(reps * queries.size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::check_flags(argc, argv, {"--out", "--quantum", "--baseline", "--backend"},
                     {"--smoke"},
                     "bench_planner [--smoke] [--out FILE] [--quantum S] [--baseline FILE] "
                     "[--backend scalar|simd|auto]");
  const bool smoke = bench::smoke_arg(argc, argv);
  const std::string out_path = bench::out_arg(argc, argv, "BENCH_planner.json");
  const std::string baseline_path = bench::baseline_arg(argc, argv);
  if (!baseline_path.empty()) {
    // A pre-vi baseline must fail here, not silently diff clean.
    bench::check_baseline_fields(baseline_path, 2,
                                 {"\"vi\"", "\"vi_decision_divergence\"",
                                  "\"vi_quantum_s\""});
  }
  const char* backend = bench::backend_arg(argc, argv);
  double quantum = abr::kDefaultDpBufferQuantumS;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--quantum") == 0) quantum = std::atof(argv[i + 1]);
  }

  const std::vector<size_t> horizons =
      smoke ? std::vector<size_t>{1, 3, 5} : std::vector<size_t>{1, 2, 3, 4, 5, 6, 7};
  const size_t num_obs = smoke ? 8 : 48;
  const size_t num_scenarios = 8;
  const std::vector<double> rebuf = {0.0, 1.0, 2.0};
  const uint64_t seed = 0x5e15e1;

  auto video = media::Encoder().encode(
      media::SourceVideo::generate("PlannerBench", media::Genre::kSports, 240));
  const size_t max_horizon = horizons.back();
  auto cases = make_cases(video, num_obs, num_scenarios, max_horizon, seed);

  abr::DpPlanner dp(quantum);
  abr::ExhaustivePlanner exhaustive;
  abr::ViPlanner vi;  // default quantum: the production discretization

  struct Row {
    size_t horizon;
    double dp_ns, ex_ns, vi_ns;
    size_t mismatches;
    size_t vi_divergence;
    size_t decisions;
  };
  std::vector<Row> rows;
  size_t total_mismatches = 0;
  size_t total_vi_divergence = 0;

  std::printf("planner bench: %zu obs, %zu scenarios, ladder %zu levels, rebuf {0,1,2}s, "
              "quantum %.3gs, vi quantum %.3gs\n",
              num_obs, num_scenarios, video.ladder().level_count(), quantum,
              vi.quantum_s());
  std::printf("%8s %14s %14s %14s %10s %12s %10s\n", "horizon", "dp ns/dec",
              "exhaustive ns", "vi ns/dec", "speedup", "mismatches", "vi div");

  for (size_t h : horizons) {
    std::vector<abr::PlanQuery> queries;
    queries.reserve(cases.size());
    for (const auto& c : cases) queries.push_back(make_query(c, h, rebuf));

    // Cross-check decisions once before timing: dp must agree with the
    // reference; vi's divergence is counted (lossy by design).
    size_t mismatches = 0;
    size_t vi_divergence = 0;
    for (const auto& q : queries) {
      abr::PlanResult a = exhaustive.plan(q);
      abr::PlanResult b = dp.plan(q);
      if (a.best_level != b.best_level || a.best_rebuffer_s != b.best_rebuffer_s ||
          a.best_value != b.best_value || a.nostall_level != b.nostall_level ||
          a.nostall_value != b.nostall_value) {
        ++mismatches;
      }
      abr::PlanResult v = vi.plan(q);
      if (v.best_level != a.best_level || v.best_rebuffer_s != a.best_rebuffer_s) {
        ++vi_divergence;
      }
    }
    total_mismatches += mismatches;
    total_vi_divergence += vi_divergence;

    // Repetitions scale down with the exponential cost of the exhaustive
    // side; the DP and VI run proportionally more reps for stable timing.
    const size_t ex_reps = smoke ? 1 : (h <= 3 ? 20 : (h <= 5 ? 5 : 1));
    const size_t dp_reps = smoke ? 5 : 50;

    uint64_t checksum = 0;
    double dp_ns = time_plans_ns(dp, queries, dp_reps, &checksum);
    double ex_ns = time_plans_ns(exhaustive, queries, ex_reps, &checksum);
    double vi_ns = time_plans_ns(vi, queries, dp_reps, &checksum);
    rows.push_back({h, dp_ns, ex_ns, vi_ns, mismatches, vi_divergence, queries.size()});
    std::printf("%8zu %14.0f %14.0f %14.0f %9.1fx %12zu %10zu\n", h, dp_ns, ex_ns, vi_ns,
                ex_ns / dp_ns, mismatches, vi_divergence);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"planner\",\n");
  std::fprintf(f, "  \"schema_version\": 2,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"config\": {\"levels\": %zu, \"scenarios\": %zu, \"observations\": %zu, "
               "\"rebuffer_options_s\": [0, 1, 2], \"use_weights\": true, "
               "\"buffer_quantum_s\": %g, \"vi_quantum_s\": %g, \"seed\": %llu, "
               "\"backend\": \"%s\"},\n",
               video.ladder().level_count(), num_scenarios, num_obs, quantum,
               vi.quantum_s(), static_cast<unsigned long long>(seed), backend);
  std::fprintf(f, "  \"horizons\": [\n");
  double speedup_h5 = 0.0;
  double vi_speedup_h5 = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    double speedup = r.ex_ns / r.dp_ns;
    if (r.horizon == 5) {
      speedup_h5 = speedup;
      vi_speedup_h5 = r.dp_ns / r.vi_ns;
    }
    std::fprintf(f,
                 "    {\"horizon\": %zu, "
                 "\"dp\": {\"ns_per_decision\": %.0f, \"decisions_per_s\": %.0f}, "
                 "\"exhaustive\": {\"ns_per_decision\": %.0f, \"decisions_per_s\": %.0f}, "
                 "\"vi\": {\"ns_per_decision\": %.0f, \"decisions_per_s\": %.0f}, "
                 "\"speedup\": %.2f, \"decisions_checked\": %zu, "
                 "\"decision_mismatches\": %zu, \"vi_decision_divergence\": %zu}%s\n",
                 r.horizon, r.dp_ns, 1e9 / r.dp_ns, r.ex_ns, 1e9 / r.ex_ns, r.vi_ns,
                 1e9 / r.vi_ns, speedup, r.decisions, r.mismatches, r.vi_divergence,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"summary\": {\"speedup_at_horizon_5\": %.2f, "
                  "\"vi_speedup_over_dp_at_horizon_5\": %.2f, "
                  "\"total_decision_mismatches\": %zu, "
                  "\"total_vi_decision_divergence\": %zu, "
                  "\"dp_arena_bytes\": %zu, \"vi_arena_bytes\": %zu}\n",
               speedup_h5, vi_speedup_h5, total_mismatches, total_vi_divergence,
               dp.arena_bytes(), vi.arena_bytes());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Exact merging (quantum 0) must agree with the exhaustive planner
  // decision-for-decision; lossy bucketing may legitimately diverge, so
  // mismatches are reported in the JSON but do not fail the run.
  if (total_mismatches > 0 && quantum == 0.0) {
    std::fprintf(stderr, "error: %zu decision mismatches between planners\n",
                 total_mismatches);
    return 1;
  }
  return 0;
}
