// Figure 12b: QoE vs normalized bandwidth usage — each ABR evaluated on a
// trace scaled by different ratios; bandwidth savings read off horizontally
// at a target QoE. Paper: ~27.9% savings vs Pensieve/Fugu, ~32.1% vs BBA at
// target QoE 0.8 (on their scale).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "util/stats.h"

using namespace sensei;
using core::Experiments;

namespace {

// Mean true QoE of a policy across all videos at one bandwidth scale.
double mean_qoe(sim::AbrPolicy& policy, const net::ThroughputTrace& trace,
                bool use_weights) {
  const auto& videos = Experiments::videos();
  const auto& weights = Experiments::weights();
  util::Accumulator acc;
  const std::vector<double> none;
  for (size_t v = 0; v < videos.size(); ++v) {
    acc.add(Experiments::run(videos[v], trace, policy, use_weights ? weights[v] : none)
                .true_qoe);
  }
  return acc.mean();
}

// Linear interpolation of the scale needed to reach `target` QoE.
double scale_for_target(const std::vector<double>& scales, const std::vector<double>& qoe,
                        double target) {
  for (size_t i = 1; i < scales.size(); ++i) {
    if (qoe[i] >= target) {
      double t = (target - qoe[i - 1]) / (qoe[i] - qoe[i - 1]);
      return scales[i - 1] + t * (scales[i] - scales[i - 1]);
    }
  }
  return scales.back();
}

}  // namespace

int main() {
  net::ThroughputTrace base_trace = Experiments::traces()[6];  // ~2.7 Mbps broadband
  const std::vector<double> scales = {0.2, 0.35, 0.5, 0.65, 0.8, 1.0};

  abr::BbaAbr bba;
  auto fugu = core::Sensei::make_fugu();
  auto sensei_fugu = core::Sensei::make_sensei_fugu();
  auto& pensieve = Experiments::pensieve();

  std::printf("%s", util::banner("Figure 12b: QoE vs normalized bandwidth usage").c_str());
  util::Table table({"bandwidth scale", "SENSEI", "Pensieve", "Fugu", "BBA"});
  std::vector<double> q_sensei, q_pen, q_fugu, q_bba;
  for (double scale : scales) {
    auto trace = base_trace.scaled(scale);
    q_sensei.push_back(mean_qoe(*sensei_fugu, trace, true));
    q_pen.push_back(mean_qoe(pensieve, trace, false));
    q_fugu.push_back(mean_qoe(*fugu, trace, false));
    q_bba.push_back(mean_qoe(bba, trace, false));
    table.add_row(std::vector<double>{scale, q_sensei.back(), q_pen.back(), q_fugu.back(),
                                      q_bba.back()},
                  3);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Bandwidth savings at a mid-range target QoE reachable by all ABRs.
  double target = 0.9 * std::min({q_sensei.back(), q_pen.back(), q_fugu.back(),
                                  q_bba.back()});
  double s_sensei = scale_for_target(scales, q_sensei, target);
  double s_fugu = scale_for_target(scales, q_fugu, target);
  double s_bba = scale_for_target(scales, q_bba, target);
  std::printf("target QoE %.3f: SENSEI needs %.2fx bandwidth, Fugu %.2fx, BBA %.2fx\n",
              target, s_sensei, s_fugu, s_bba);
  std::printf("bandwidth savings: %.1f%% vs Fugu, %.1f%% vs BBA "
              "(paper: 27.9%% vs Pensieve/Fugu, 32.1%% vs BBA)\n",
              (1.0 - s_sensei / s_fugu) * 100.0, (1.0 - s_sensei / s_bba) * 100.0);
  return 0;
}
