// Figure 12b: QoE vs normalized bandwidth usage — each ABR evaluated on a
// trace scaled by different ratios; bandwidth savings read off horizontally
// at a target QoE. Paper: ~27.9% savings vs Pensieve/Fugu, ~32.1% vs BBA at
// target QoE 0.8 (on their scale).
//
// Ported onto core::ExperimentRunner: each ABR's (video × scaled-trace) grid
// fans across the worker pool (`--threads N`, default hardware concurrency);
// results are bit-identical to a serial run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/experiments.h"
#include "util/stats.h"

using namespace sensei;
using core::Experiments;

namespace {

// Mean true QoE per bandwidth scale for one policy: one run_grid over
// (videos × scaled traces), then a column average per trace.
std::vector<double> qoe_per_scale(const Experiments::PolicyFactory& make_policy,
                                  const std::vector<net::ThroughputTrace>& scaled,
                                  bool use_weights, const core::ExperimentRunner& runner) {
  const auto& videos = Experiments::videos();
  auto cells = Experiments::run_grid(
      videos, scaled, make_policy,
      use_weights ? Experiments::weights() : std::vector<std::vector<double>>{}, runner);
  std::vector<double> out;
  for (size_t t = 0; t < scaled.size(); ++t) {
    util::Accumulator acc;
    for (size_t v = 0; v < videos.size(); ++v) acc.add(cells[v * scaled.size() + t].true_qoe);
    out.push_back(acc.mean());
  }
  return out;
}

const char* planner_text(abr::PlannerKind planner) {
  switch (planner) {
    case abr::PlannerKind::kExhaustive: return "exhaustive";
    case abr::PlannerKind::kVi: return "vi";
    default: return "dp";
  }
}

// Linear interpolation of the scale needed to reach `target` QoE.
double scale_for_target(const std::vector<double>& scales, const std::vector<double>& qoe,
                        double target) {
  for (size_t i = 1; i < scales.size(); ++i) {
    if (qoe[i] >= target) {
      double t = (target - qoe[i - 1]) / (qoe[i] - qoe[i - 1]);
      return scales[i - 1] + t * (scales[i] - scales[i - 1]);
    }
  }
  return scales.back();
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentRunner runner(bench::threads_arg(argc, argv));
  const abr::PlannerKind planner = bench::planner_arg(argc, argv);
  bench::trace_integration_arg(argc, argv);

  net::ThroughputTrace base_trace = Experiments::traces()[6];  // ~2.7 Mbps broadband
  const std::vector<double> scales = {0.2, 0.35, 0.5, 0.65, 0.8, 1.0};
  std::vector<net::ThroughputTrace> scaled;
  for (double scale : scales) scaled.push_back(base_trace.scaled(scale));

  // Warm the shared fixtures (videos, weights, trained Pensieve) before
  // timing so the wall clock below measures the grid sweep alone. All four
  // policies come from the registry via Experiments::policy_factory.
  Experiments::weights();
  Experiments::pensieve();
  const std::string suffix = std::string(":planner=") + planner_text(planner);

  auto start = std::chrono::steady_clock::now();
  auto q_sensei =
      qoe_per_scale(Experiments::policy_factory("sensei-fugu" + suffix), scaled, true, runner);
  auto q_pen = qoe_per_scale(Experiments::policy_factory("pensieve"), scaled, false, runner);
  auto q_fugu =
      qoe_per_scale(Experiments::policy_factory("fugu" + suffix), scaled, false, runner);
  auto q_bba = qoe_per_scale(Experiments::policy_factory("bba"), scaled, false, runner);
  double sweep_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                       .count();

  std::printf("%s", util::banner("Figure 12b: QoE vs normalized bandwidth usage").c_str());
  util::Table table({"bandwidth scale", "SENSEI", "Pensieve", "Fugu", "BBA"});
  for (size_t i = 0; i < scales.size(); ++i) {
    table.add_row(std::vector<double>{scales[i], q_sensei[i], q_pen[i], q_fugu[i], q_bba[i]},
                  3);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Bandwidth savings at a mid-range target QoE reachable by all ABRs.
  double target = 0.9 * std::min({q_sensei.back(), q_pen.back(), q_fugu.back(),
                                  q_bba.back()});
  double s_sensei = scale_for_target(scales, q_sensei, target);
  double s_fugu = scale_for_target(scales, q_fugu, target);
  double s_bba = scale_for_target(scales, q_bba, target);
  std::printf("target QoE %.3f: SENSEI needs %.2fx bandwidth, Fugu %.2fx, BBA %.2fx\n",
              target, s_sensei, s_fugu, s_bba);
  std::printf("bandwidth savings: %.1f%% vs Fugu, %.1f%% vs BBA "
              "(paper: 27.9%% vs Pensieve/Fugu, 32.1%% vs BBA)\n",
              (1.0 - s_sensei / s_fugu) * 100.0, (1.0 - s_sensei / s_bba) * 100.0);
  std::printf("grid sweep: %zu sessions in %.2fs on %zu thread(s)\n",
              4 * Experiments::videos().size() * scaled.size(), sweep_s,
              runner.num_threads());
  return 0;
}
