// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary prints the same rows/series the paper reports.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "abr/planner.h"
#include "crowd/campaign.h"
#include "crowd/ground_truth.h"
#include "media/encoder.h"
#include "net/trace.h"
#include "sim/render.h"
#include "util/stats.h"
#include "util/table.h"

namespace sensei::bench {

// Parses `--planner dp|exhaustive` for the Fugu-based grid benches. The two
// engines produce identical decisions (enforced by the equivalence tests),
// so bench output must not change with this flag — only wall time does.
inline abr::PlannerKind planner_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--planner") == 0 && i + 1 < argc) {
      if (std::strcmp(argv[i + 1], "dp") == 0) return abr::PlannerKind::kDp;
      if (std::strcmp(argv[i + 1], "exhaustive") == 0) return abr::PlannerKind::kExhaustive;
      std::fprintf(stderr, "error: --planner expects dp or exhaustive\n");
      std::exit(2);
    }
  }
  return abr::PlannerKind::kDp;
}

// Parses `--trace-integration indexed|walker` and applies it as the
// process-wide default (net::set_default_trace_integration). The two
// integrators are bit-identical (tests/test_trace_index.cpp), so bench
// output must not change with this flag — only wall time does.
inline net::TraceIntegration trace_integration_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-integration") == 0 && i + 1 < argc) {
      net::TraceIntegration mode;
      if (std::strcmp(argv[i + 1], "indexed") == 0) {
        mode = net::TraceIntegration::kIndexed;
      } else if (std::strcmp(argv[i + 1], "walker") == 0) {
        mode = net::TraceIntegration::kWalker;
      } else {
        std::fprintf(stderr, "error: --trace-integration expects indexed or walker\n");
        std::exit(2);
      }
      net::set_default_trace_integration(mode);
      return mode;
    }
  }
  return net::TraceIntegration::kIndexed;
}

// Parses `--threads N` for the grid benches. 0 (the default) lets
// core::ExperimentRunner pick std::thread::hardware_concurrency(). A value
// that is present but unparsable or non-positive aborts: falling back
// silently would run with a different thread count than the caller asked
// for, which defeats determinism comparisons keyed on `--threads`.
inline size_t threads_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      char* end = nullptr;
      long n = (i + 1 < argc) ? std::strtol(argv[i + 1], &end, 10) : 0;
      if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' || n <= 0) {
        std::fprintf(stderr, "error: --threads requires a positive integer\n");
        std::exit(2);
      }
      return static_cast<size_t>(n);
    }
  }
  return 0;
}

// Crowdsourced MOS for a set of renderings of one source video: runs a
// simulated MTurk campaign against the pristine reference, as §4.1 does.
inline std::vector<double> crowdsourced_mos(const crowd::GroundTruthQoE& oracle,
                                            const media::EncodedVideo& video,
                                            const std::vector<sim::RenderedVideo>& renderings,
                                            size_t ratings_per_video, uint64_t seed) {
  crowd::Campaign campaign(oracle, crowd::RaterConfig(), crowd::CampaignConfig(), seed);
  auto reference = sim::RenderedVideo::pristine(video);
  return campaign.run(renderings, reference, ratings_per_video).mos;
}

// Prints an empirical CDF as "value fraction" rows at the given quantiles.
inline void print_cdf(const std::string& title, const std::vector<double>& values) {
  std::printf("%s", util::banner(title).c_str());
  util::Table table({"percentile", "value"});
  for (double p : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0}) {
    table.add_row(std::vector<double>{p, util::percentile(values, p)}, 2);
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace sensei::bench
