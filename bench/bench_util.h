// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary prints the same rows/series the paper reports.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "abr/planner.h"
#include "crowd/campaign.h"
#include "crowd/ground_truth.h"
#include "media/encoder.h"
#include "net/trace.h"
#include "sim/render.h"
#include "sim/session.h"
#include "sim/timeline.h"
#include "util/kernels.h"
#include "util/stats.h"
#include "util/table.h"

namespace sensei::bench {

// Parses `--planner dp|exhaustive|vi` for the Fugu-based grid benches.
// dp and exhaustive produce identical decisions (enforced by the
// equivalence tests), so bench output must not change between them — only
// wall time does. vi is the lossy discretized value iteration: output may
// legitimately shift within the accuracy bound pinned by
// tests/test_planner_accuracy.cpp, so CI treats dp-vs-vi diffs as
// informational, never as a determinism failure.
inline abr::PlannerKind planner_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--planner") == 0 && i + 1 < argc) {
      if (std::strcmp(argv[i + 1], "dp") == 0) return abr::PlannerKind::kDp;
      if (std::strcmp(argv[i + 1], "exhaustive") == 0) return abr::PlannerKind::kExhaustive;
      if (std::strcmp(argv[i + 1], "vi") == 0) return abr::PlannerKind::kVi;
      std::fprintf(stderr, "error: --planner expects dp, exhaustive, or vi\n");
      std::exit(2);
    }
  }
  return abr::PlannerKind::kDp;
}

// Parses `--baseline FILE`: a pinned bench JSON from an earlier run whose
// schema this binary validates via check_baseline_fields. Empty when absent.
inline std::string baseline_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --baseline requires a file path\n");
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return "";
}

// Guards the pinned-JSON comparisons against stale baselines: fails the
// process unless the JSON at `path` declares a schema_version of at least
// `min_schema_version` AND contains every string in `required_fields`. A
// baseline written before a schema gained a dimension (e.g. the planner
// mode) would otherwise let a diff "pass" against a file that never
// recorded the dimension under test.
inline void check_baseline_fields(const std::string& path, long min_schema_version,
                                  std::initializer_list<const char*> required_fields) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    std::fprintf(stderr, "error: cannot read baseline %s\n", path.c_str());
    std::exit(1);
  }
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);

  const char* key = "\"schema_version\":";
  size_t pos = text.find(key);
  long version =
      pos == std::string::npos ? 0 : std::strtol(text.c_str() + pos + std::strlen(key), nullptr, 10);
  if (version < min_schema_version) {
    std::fprintf(stderr,
                 "error: baseline %s has schema_version %ld, this binary requires >= %ld "
                 "(regenerate the pinned JSON)\n",
                 path.c_str(), version, min_schema_version);
    std::exit(1);
  }
  for (const char* field : required_fields) {
    if (text.find(field) == std::string::npos) {
      std::fprintf(stderr,
                   "error: baseline %s is missing required field %s "
                   "(regenerate the pinned JSON)\n",
                   path.c_str(), field);
      std::exit(1);
    }
  }
  std::printf("baseline %s: schema_version %ld ok, %zu required fields present\n",
              path.c_str(), version, required_fields.size());
}

// Parses `--trace-integration indexed|walker` and applies it as the
// process-wide default (net::set_default_trace_integration). The two
// integrators are bit-identical (tests/test_trace_index.cpp), so bench
// output must not change with this flag — only wall time does.
inline net::TraceIntegration trace_integration_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-integration") == 0 && i + 1 < argc) {
      net::TraceIntegration mode;
      if (std::strcmp(argv[i + 1], "indexed") == 0) {
        mode = net::TraceIntegration::kIndexed;
      } else if (std::strcmp(argv[i + 1], "walker") == 0) {
        mode = net::TraceIntegration::kWalker;
      } else {
        std::fprintf(stderr, "error: --trace-integration expects indexed or walker\n");
        std::exit(2);
      }
      net::set_default_trace_integration(mode);
      return mode;
    }
  }
  return net::TraceIntegration::kIndexed;
}

// Parses `--backend scalar|simd|auto` and applies it process-wide via
// util::set_kernel_backend. The backends are bit-identical by contract
// (tests/test_kernels.cpp), so bench output must not change with this flag —
// only wall time does. Returns the *resolved* backend name ("scalar",
// "sse2", "avx2") so the JSON-emitting benches can record which kernel
// implementation actually produced the pinned numbers.
inline const char* backend_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      if (!util::set_kernel_backend(argv[i + 1])) {
        std::fprintf(stderr, "error: --backend expects scalar, simd, or auto\n");
        std::exit(2);
      }
      return util::kernel_backend_name();
    }
  }
  return util::kernel_backend_name();
}

// Parses `--threads N` for the grid benches. 0 (the default) lets
// core::ExperimentRunner pick std::thread::hardware_concurrency(). A value
// that is present but unparsable or non-positive aborts: falling back
// silently would run with a different thread count than the caller asked
// for, which defeats determinism comparisons keyed on `--threads`.
inline size_t threads_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      char* end = nullptr;
      long n = (i + 1 < argc) ? std::strtol(argv[i + 1], &end, 10) : 0;
      if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' || n <= 0) {
        std::fprintf(stderr, "error: --threads requires a positive integer\n");
        std::exit(2);
      }
      return static_cast<size_t>(n);
    }
  }
  return 0;
}

// Collects every `--policy SPEC` occurrence: abr::PolicyRegistry spec
// strings ("bba", "fugu:planner=vi", ... — grammar in abr/registry.h) the
// spec-driven benches append to or substitute for their default policy
// set. Syntax/vocabulary validation is the registry's job, so a bad spec
// fails with the registry's position-annotated error at construction.
inline std::vector<std::string> policy_specs_arg(int argc, char** argv) {
  std::vector<std::string> specs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) specs.push_back(argv[i + 1]);
  }
  return specs;
}

// Monotonic wall clock in seconds, for the timing loops of the perf benches.
inline double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Parses `--smoke`: the reduced sweep the CI perf jobs run per push.
inline bool smoke_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

// Parses `--out FILE` for the JSON-emitting benches; a present flag without
// a destination aborts rather than silently writing the default path.
inline std::string out_arg(int argc, char** argv, const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a file path\n");
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return default_path;
}

// Rejects argv entries outside the accepted flag set, so a typo fails loudly
// instead of silently running the default sweep. `value_flags` consume the
// following argument; `bool_flags` stand alone.
inline void check_flags(int argc, char** argv, std::initializer_list<const char*> value_flags,
                        std::initializer_list<const char*> bool_flags,
                        const char* usage) {
  for (int i = 1; i < argc; ++i) {
    bool known = false;
    for (const char* flag : value_flags) {
      if (std::strcmp(argv[i], flag) == 0) {
        // A value flag with a missing value — or another flag where its
        // value belongs — must fail loudly: silently running the default
        // would e.g. let a dropped `--trace-integration walker` turn CI's
        // mode-diff into indexed-vs-indexed, and `--out --smoke` would be
        // double-read as both an output path and the smoke switch.
        if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
          std::fprintf(stderr, "error: %s requires a value\nusage: %s\n", flag, usage);
          std::exit(2);
        }
        known = true;
        ++i;  // the flag's value
        break;
      }
    }
    if (!known) {
      for (const char* flag : bool_flags) {
        if (std::strcmp(argv[i], flag) == 0) {
          known = true;
          break;
        }
      }
    }
    if (!known) {
      std::fprintf(stderr, "usage: %s\n", usage);
      std::exit(2);
    }
  }
}

// True when two sessions differ in any identity-gated field: outcome,
// startup delay, chunk count, any per-chunk record field, or — when both
// sessions carry trajectories — any ChunkTrajectory field (stall placement
// is the project's premise, so the bench gates must see it too). This is
// the single comparator behind every bench-side bit-identity cross-check
// (integration modes in bench_session_throughput, Simulator-vs-Player in
// bench_multisession), so a new record/trajectory field only needs adding
// here.
inline bool sessions_differ(const sim::SessionResult& a, const sim::SessionResult& b) {
  if (a.chunks().size() != b.chunks().size() || a.outcome() != b.outcome() ||
      a.outcome_cause() != b.outcome_cause() || a.failed_chunk() != b.failed_chunk() ||
      a.startup_delay_s() != b.startup_delay_s()) {
    return true;
  }
  for (size_t i = 0; i < a.chunks().size(); ++i) {
    const sim::ChunkRecord& x = a.chunks()[i];
    const sim::ChunkRecord& y = b.chunks()[i];
    if (x.level != y.level || x.size_bytes != y.size_bytes ||
        x.bitrate_kbps != y.bitrate_kbps || x.visual_quality != y.visual_quality ||
        x.download_start_s != y.download_start_s ||
        x.download_time_s != y.download_time_s || x.rebuffer_s != y.rebuffer_s ||
        x.scheduled_rebuffer_s != y.scheduled_rebuffer_s ||
        x.buffer_after_s != y.buffer_after_s) {
      return true;
    }
  }
  if ((a.timeline() == nullptr) != (b.timeline() == nullptr)) return true;
  if (a.timeline() != nullptr) {
    const sim::SessionTimeline& ta = *a.timeline();
    const sim::SessionTimeline& tb = *b.timeline();
    if (ta.chunks().size() != tb.chunks().size() ||
        ta.startup_delay_s() != tb.startup_delay_s() || ta.outcome() != tb.outcome()) {
      return true;
    }
    if (ta.outcome() == sim::SessionOutcome::kOutage &&
        (ta.outage_chunk() != tb.outage_chunk() ||
         ta.outage_wall_s() != tb.outage_wall_s())) {
      return true;
    }
    for (size_t i = 0; i < ta.chunks().size(); ++i) {
      const sim::ChunkTrajectory& x = ta.chunks()[i];
      const sim::ChunkTrajectory& y = tb.chunks()[i];
      if (x.level != y.level || x.request_wall_s != y.request_wall_s ||
          x.rtt_s != y.rtt_s || x.transfer_s != y.transfer_s ||
          x.retry_wasted_s != y.retry_wasted_s || x.backoff_s != y.backoff_s ||
          x.retries != y.retries ||
          x.arrival_wall_s != y.arrival_wall_s || x.stall_s != y.stall_s ||
          x.stall_start_wall_s != y.stall_start_wall_s ||
          x.scheduled_pause_s != y.scheduled_pause_s || x.idle_s != y.idle_s ||
          x.buffer_before_s != y.buffer_before_s || x.buffer_after_s != y.buffer_after_s ||
          x.playhead_before_s != y.playhead_before_s ||
          x.playhead_after_s != y.playhead_after_s ||
          x.pause_debt_after_s != y.pause_debt_after_s ||
          x.goodput_kbps != y.goodput_kbps) {
        return true;
      }
    }
  }
  return false;
}

// Crowdsourced MOS for a set of renderings of one source video: runs a
// simulated MTurk campaign against the pristine reference, as §4.1 does.
inline std::vector<double> crowdsourced_mos(const crowd::GroundTruthQoE& oracle,
                                            const media::EncodedVideo& video,
                                            const std::vector<sim::RenderedVideo>& renderings,
                                            size_t ratings_per_video, uint64_t seed) {
  crowd::Campaign campaign(oracle, crowd::RaterConfig(), crowd::CampaignConfig(), seed);
  auto reference = sim::RenderedVideo::pristine(video);
  return campaign.run(renderings, reference, ratings_per_video).mos;
}

// Prints an empirical CDF as "value fraction" rows at the given quantiles.
inline void print_cdf(const std::string& title, const std::vector<double>& values) {
  std::printf("%s", util::banner(title).c_str());
  util::Table table({"percentile", "value"});
  for (double p : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0}) {
    table.add_row(std::vector<double>{p, util::percentile(values, p)}, 2);
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace sensei::bench
