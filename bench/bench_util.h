// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Each binary prints the same rows/series the paper reports.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "crowd/campaign.h"
#include "crowd/ground_truth.h"
#include "media/encoder.h"
#include "sim/render.h"
#include "util/stats.h"
#include "util/table.h"

namespace sensei::bench {

// Crowdsourced MOS for a set of renderings of one source video: runs a
// simulated MTurk campaign against the pristine reference, as §4.1 does.
inline std::vector<double> crowdsourced_mos(const crowd::GroundTruthQoE& oracle,
                                            const media::EncodedVideo& video,
                                            const std::vector<sim::RenderedVideo>& renderings,
                                            size_t ratings_per_video, uint64_t seed) {
  crowd::Campaign campaign(oracle, crowd::RaterConfig(), crowd::CampaignConfig(), seed);
  auto reference = sim::RenderedVideo::pristine(video);
  return campaign.run(renderings, reference, ratings_per_video).mos;
}

// Prints an empirical CDF as "value fraction" rows at the given quantiles.
inline void print_cdf(const std::string& title, const std::vector<double>& values) {
  std::printf("%s", util::banner(title).c_str());
  util::Table table({"percentile", "value"});
  for (double p : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0}) {
    table.add_row(std::vector<double>{p, util::percentile(values, p)}, 2);
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace sensei::bench
